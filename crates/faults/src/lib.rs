//! Fault models and exhaustive fault simulation for n-detection analysis.
//!
//! This crate implements the two fault populations of Pomeranz & Reddy
//! (DATE 2005):
//!
//! * **Target faults `F`** — single stuck-at faults on every line (stems
//!   and fanout branches), reduced by structural equivalence collapsing
//!   ([`collapse`]); the class representative is the most downstream
//!   member, and the collapsed list is ordered by (line id, stuck value),
//!   reproducing the fault indices of the paper's Table 1.
//! * **Untargeted faults `G`** — detectable, non-feedback **four-way
//!   bridging faults** between outputs of multi-input gates
//!   ([`BridgingFault`]): for stems `x`,`y` the four faults are
//!   `(x,0,y,1)`, `(x,1,y,0)`, `(y,0,x,1)`, `(y,1,x,0)`; fault
//!   `(l1,a1,l2,a2)` is activated on vectors where the fault-free circuit
//!   has `l1 = a1` and `l2 = a2`, and its effect is to flip `l1`.
//!
//! Detection sets `T(h) ⊆ U` are computed for every fault by injection
//! into an event-driven bit-parallel exhaustive simulation
//! ([`FaultSimulator`]): only nodes whose faulty 64-vector word actually
//! differs from the fault-free word are re-evaluated, and a block
//! terminates as soon as the difference frontier goes empty. The sets
//! are bundled into a [`FaultUniverse`] — the input to the analyses in
//! `ndetect-core`.
//!
//! # Example
//!
//! ```
//! use ndetect_netlist::NetlistBuilder;
//! use ndetect_faults::FaultUniverse;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = NetlistBuilder::new("and2");
//! let a = b.input("a");
//! let c = b.input("c");
//! let g = b.and("g", &[a, c])?;
//! b.output(g);
//! let universe = FaultUniverse::build(&b.build()?)?;
//! // AND2 collapses to 4 target faults: a/1, c/1, g/0, g/1.
//! assert_eq!(universe.targets().len(), 4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod artifact;
mod bridging;
pub mod collapse;
mod error;
mod sim;
mod stuck_at;
mod universe;

pub use artifact::{explicit_universe_key, universe_key, KIND_UNIVERSE};
pub use bridging::{
    enumerate_bridges, enumerate_bridges_among, enumerate_four_way, BridgeModel, BridgingFault,
};
pub use collapse::CollapsedFaults;
pub use error::FaultError;
pub use sim::{threeval_detects_stuck, FaultSimulator};
pub use stuck_at::{all_stuck_at_faults, input_line_of_pin, StuckAtFault};
pub use universe::{ExplicitTargets, FaultUniverse, UniverseOptions};
