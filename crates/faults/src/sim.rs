//! Fault injection over bit-parallel exhaustive simulation, serial or
//! sharded over 64-vector pattern blocks.
//!
//! The default kernel is **event-driven**: instead of re-evaluating the
//! entire fanout cone of the fault site on every block, it walks the
//! site's precomputed CSR cone once per fault, evaluates a gate only
//! when some fanin joined the **difference frontier** (its faulty words
//! actually differ from the fault-free words), processes a gate's
//! blocks as one contiguous node-major [`RowMatrix`] row (running the
//! chunked SIMD kernels of [`ndetect_sim::rows`]), and restricts every
//! row operation to the sub-range of blocks on which the fault is
//! active at all.
//!
//! Under a bounded [`MemoryBudget`] the kernel runs **tiled**: the
//! node-major good-value transpose and the per-edge `others` table are
//! not materialized at full width; instead each worker streams the
//! pattern space in tiles of `tile_width` blocks, gathering its private
//! tile of both tables on demand (cached per scratch, so a worker
//! sweeping many faults over one tile pays the gather once). Results
//! are bit-identical to the full-width kernel — tiles partition the
//! block axis and blocks are independent. The pre-existing full-cone
//! kernel survives as
//! [`FaultSimulator::detection_set_stuck_full_cone`] /
//! [`FaultSimulator::detection_set_bridge_full_cone`] — the
//! differential-testing oracle and benchmark baseline.

// Hot module: every word buffer comes from the `rows` data plane.
#![deny(clippy::disallowed_methods)]

use crate::bridging::BridgingFault;
use crate::stuck_at::StuckAtFault;
use ndetect_netlist::{GateKind, LineKind, Netlist, NodeId, ReachabilityMatrix, Sink};
use ndetect_obs::trace;
use ndetect_sim::rows as rowops;
use ndetect_sim::rows::{zeroed_words, RowMatrix};
use ndetect_sim::{
    eval_gate_trit, eval_gate_word_pin_override, eval_trits_all, parallel, GoodValues,
    MemoryBudget, PartialVector, PatternSpace, SimScratch, Trit, VectorSet,
};
use std::ops::Range;

fn stuck_word(value: bool) -> u64 {
    if value {
        u64::MAX
    } else {
        0
    }
}

/// Evaluates one gate over a contiguous window of blocks: operand rows
/// are read through `op` (called with the pin index and the fanin node)
/// and the result row is written to `out`. The inner loops are plain
/// slice folds, so they vectorize.
fn eval_gate_rows<'a>(
    kind: GateKind,
    fanins: &[NodeId],
    op: impl Fn(usize, NodeId) -> &'a [u64],
    out: &mut [u64],
) {
    match kind {
        GateKind::And | GateKind::Nand => {
            out.fill(u64::MAX);
            for (i, &f) in fanins.iter().enumerate() {
                for (o, &w) in out.iter_mut().zip(op(i, f)) {
                    *o &= w;
                }
            }
            if kind == GateKind::Nand {
                for o in out.iter_mut() {
                    *o = !*o;
                }
            }
        }
        GateKind::Or | GateKind::Nor => {
            out.fill(0);
            for (i, &f) in fanins.iter().enumerate() {
                for (o, &w) in out.iter_mut().zip(op(i, f)) {
                    *o |= w;
                }
            }
            if kind == GateKind::Nor {
                for o in out.iter_mut() {
                    *o = !*o;
                }
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            out.fill(0);
            for (i, &f) in fanins.iter().enumerate() {
                for (o, &w) in out.iter_mut().zip(op(i, f)) {
                    *o ^= w;
                }
            }
            if kind == GateKind::Xnor {
                for o in out.iter_mut() {
                    *o = !*o;
                }
            }
        }
        GateKind::Buf => out.copy_from_slice(op(0, fanins[0])),
        GateKind::Not => {
            for (o, &w) in out.iter_mut().zip(op(0, fanins[0])) {
                *o = !w;
            }
        }
        GateKind::Const0 => out.fill(0),
        GateKind::Const1 => out.fill(u64::MAX),
        GateKind::Input => unreachable!("inputs are never re-evaluated"),
    }
}

/// The fold identity of an associative gate family (`AND`-likes fold
/// from all-ones, the rest from zero).
fn fold_identity(kind: GateKind) -> u64 {
    match kind {
        GateKind::And | GateKind::Nand => u64::MAX,
        _ => 0,
    }
}

/// One row-wide fold step of an associative gate family, `dst = dst ∘
/// src` (inversion for the negated kinds is applied at the end, not
/// here).
fn fold_rows(kind: GateKind, dst: &mut [u64], src: &[u64]) {
    match kind {
        GateKind::And | GateKind::Nand => rowops::and_into(dst, src),
        GateKind::Or | GateKind::Nor => rowops::or_into(dst, src),
        GateKind::Xor | GateKind::Xnor => rowops::xor_into(dst, src),
        _ => unreachable!("not an associative gate"),
    }
}

/// Whether the single-changed-fanin fast path has a precomputed
/// "all other fanins" row for this kind.
fn has_others_rows(kind: GateKind) -> bool {
    matches!(
        kind,
        GateKind::And
            | GateKind::Nand
            | GateKind::Or
            | GateKind::Nor
            | GateKind::Xor
            | GateKind::Xnor
    )
}

/// Rebuilds the per-edge "all other fanins" rows of every associative
/// gate over one node-major tile of good values: one suffix and one
/// prefix sweep per gate (the standard exclusive-scan trick, O(fanins)
/// row passes). `good_rows` and `others` must share a width, and `run`
/// is a caller-provided scratch row of that width. Used both by full
/// mode at assembly (width = all blocks) and per tile by the tiled
/// kernel.
fn fill_others(
    netlist: &Netlist,
    good_rows: &RowMatrix,
    others: &mut RowMatrix,
    edge_offsets: &[u32],
    run: &mut [u64],
) {
    let w = others.width();
    debug_assert_eq!(good_rows.width(), w);
    debug_assert_eq!(run.len(), w);
    for (i, &offset) in edge_offsets.iter().enumerate().take(netlist.num_nodes()) {
        let node = netlist.node(NodeId::new(i));
        let kind = node.kind();
        let fanins = node.fanins();
        let m = fanins.len();
        if !has_others_rows(kind) || m == 0 {
            continue;
        }
        let base = offset as usize;
        let ident = fold_identity(kind);
        // Suffix sweep: row `pin` = fold of good fanins pin+1..m (the
        // last row is the fold identity).
        others.row_mut(base + m - 1).fill(ident);
        for pin in (0..m - 1).rev() {
            let (src, dst) = others.row_window_pair(base + pin + 1, base + pin, 0..w);
            dst.copy_from_slice(src);
            fold_rows(
                kind,
                others.row_mut(base + pin),
                good_rows.row(fanins[pin + 1].index()),
            );
        }
        // Prefix sweep folds in good fanins 0..pin.
        run.fill(ident);
        for (pin, fanin) in fanins.iter().enumerate() {
            fold_rows(kind, others.row_mut(base + pin), run);
            fold_rows(kind, run, good_rows.row(fanin.index()));
        }
    }
}

/// Computes detection sets `T(h)` by injecting one fault at a time into
/// an event-driven bit-parallel exhaustive simulation.
///
/// Construction precomputes, once per circuit:
///
/// * the fault-free value of every node on every vector ([`GoodValues`]),
///   kept in **both** block-major and node-major (transposed) layouts —
///   block-major for the full-cone oracle, node-major so the
///   event-driven kernel streams a node's words contiguously;
/// * a flattened CSR cone arena (contiguous offset + index tables): for
///   every node, its strictly-downstream gates in topological order;
/// * which nodes are observed on a primary-output slot.
///
/// Per fault, only the gates whose fanins joined the **difference
/// frontier** are re-evaluated, over only the sub-range of blocks on
/// which the fault site differs at all; detection bits accumulate from
/// observed nodes as the frontier crosses them, and propagation ends
/// the moment the frontier dies. All mutable state lives in a reusable
/// [`SimScratch`], so the hot loop performs zero heap allocations.
/// Bridging faults whose activation condition never holds never enter
/// propagation at all.
///
/// # Memory
///
/// The row-oriented kernel trades memory for streaming speed: the
/// node-major transpose, the per-edge "other fanins" rows, and every
/// per-worker [`SimScratch`] each cost `O(num_nodes × tile_width)`
/// words (the `others` table scales with total fanin instead of node
/// count). With an unbounded [`MemoryBudget`] (the default)
/// `tile_width` is the full block count — a few copies of the
/// [`GoodValues`] table, trivial at the circuit widths the paper's
/// analysis targets (`I ≤ 14`, see [`crate::FaultUniverse`]'s memory
/// note) but gigabytes per table near
/// [`ndetect_sim::MAX_EXHAUSTIVE_INPUTS`]. A bounded budget caps the
/// per-worker working set instead: `tile_width` is the largest block
/// count whose transpose + others + scratch rows fit the budget, and
/// workers stream the space tile by tile with bit-identical results.
///
/// ```
/// use ndetect_netlist::NetlistBuilder;
/// use ndetect_faults::{FaultSimulator, StuckAtFault};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new("and2");
/// let a = b.input("a");
/// let c = b.input("c");
/// let g = b.and("g", &[a, c])?;
/// b.output(g);
/// let n = b.build()?;
/// let sim = FaultSimulator::new(&n)?;
/// // g stuck-at-0 is detected only when both inputs are 1 (vector 3).
/// let stem_g = n.lines().stem(g);
/// let t = sim.detection_set_stuck(&n, StuckAtFault::new(stem_g, false));
/// assert_eq!(t.to_vec(), vec![3]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct FaultSimulator {
    space: PatternSpace,
    good: GoodValues,
    reach: ReachabilityMatrix,
    num_nodes: usize,
    num_blocks: usize,
    /// The memory budget this simulator was built under.
    budget: MemoryBudget,
    /// Tile width in blocks: `num_blocks` in full (unbounded) mode,
    /// smaller when the budget constrains the working set.
    tile_width: usize,
    /// Total rows of the per-edge `others` table (tiled scratches size
    /// their private tile from this).
    num_other_rows: usize,
    /// Full mode only: node-major transpose of the good values (row `i`
    /// = node `i`'s words for blocks `0..num_blocks`). Empty in tiled
    /// mode — each worker gathers its tile into
    /// [`SimScratch::tile_good`] instead.
    good_nm: RowMatrix,
    /// CSR offsets into [`Self::cone_gates`]: node `i`'s
    /// strictly-downstream gates (topological order) are
    /// `cone_gates[cone_offsets[i]..cone_offsets[i+1]]`.
    cone_offsets: Vec<u32>,
    /// Flattened cone arena, indexed through [`Self::cone_offsets`].
    cone_gates: Vec<NodeId>,
    /// Full mode only: per associative gate and fanin pin, the
    /// fault-free fold of **all other** fanins (row `edge_offsets[g] +
    /// pin`): when exactly one fanin of a gate changes, the gate
    /// re-evaluates in a single fused pass `op(others, changed)`
    /// instead of folding every operand. Empty in tiled mode (see
    /// [`SimScratch::tile_others`]).
    others: RowMatrix,
    /// Per node: first `others` row index of its fanin pins (nodes
    /// without tabulated rows span zero rows).
    edge_offsets: Vec<u32>,
    /// Per node: observed on at least one primary-output slot.
    observed: Vec<bool>,
}

impl FaultSimulator {
    /// Prepares a simulator for `netlist` over its exhaustive input space.
    ///
    /// # Errors
    ///
    /// Returns [`ndetect_sim::SimError`] if the circuit has too many inputs
    /// for exhaustive simulation.
    pub fn new(netlist: &Netlist) -> Result<Self, ndetect_sim::SimError> {
        Self::with_threads(netlist, 1)
    }

    /// Prepares a simulator, computing the fault-free values with up to
    /// `num_threads` workers (the blocks of [`GoodValues`] are sharded;
    /// the result is identical for every thread count).
    ///
    /// # Errors
    ///
    /// Returns [`ndetect_sim::SimError`] if the circuit has too many inputs
    /// for exhaustive simulation.
    pub fn with_threads(
        netlist: &Netlist,
        num_threads: usize,
    ) -> Result<Self, ndetect_sim::SimError> {
        Self::with_budget(netlist, num_threads, MemoryBudget::Auto)
    }

    /// Prepares a simulator under an explicit [`MemoryBudget`]: a
    /// bounded budget caps each worker's kernel working set (transpose
    /// tile + others tile + scratch rows) and the kernel streams the
    /// pattern space in tiles. Results are bit-identical for every
    /// budget; only peak memory (and streaming order) change.
    ///
    /// # Errors
    ///
    /// Returns [`ndetect_sim::SimError`] if the circuit has too many
    /// inputs for exhaustive simulation.
    pub fn with_budget(
        netlist: &Netlist,
        num_threads: usize,
        budget: MemoryBudget,
    ) -> Result<Self, ndetect_sim::SimError> {
        let space = PatternSpace::new(netlist.num_inputs())?;
        let good = {
            let mut span = trace::span("sim.good_values");
            span.field("blocks", space.num_blocks());
            GoodValues::compute_with(netlist, &space, num_threads)
        };
        Self::assemble(netlist, space, good, budget)
    }

    /// Prepares a simulator around **precomputed** fault-free values
    /// (e.g. deserialized from the on-disk artifact store), skipping the
    /// good-value simulation pass. Only the cheap structural tables
    /// (reachability, the transpose, the cone arena) are recomputed.
    ///
    /// # Errors
    ///
    /// Returns [`ndetect_sim::SimError`] if the circuit has too many
    /// inputs for exhaustive simulation.
    ///
    /// # Panics
    ///
    /// Panics if `good`'s dimensions do not match the netlist and its
    /// pattern space — callers deserializing untrusted bytes must
    /// validate the shape first.
    pub fn with_good_values(
        netlist: &Netlist,
        good: GoodValues,
    ) -> Result<Self, ndetect_sim::SimError> {
        Self::with_good_values_budget(netlist, good, MemoryBudget::Auto)
    }

    /// [`Self::with_good_values`] under an explicit [`MemoryBudget`]
    /// (see [`Self::with_budget`]).
    ///
    /// # Errors
    ///
    /// Returns [`ndetect_sim::SimError`] if the circuit has too many
    /// inputs for exhaustive simulation.
    ///
    /// # Panics
    ///
    /// Panics if `good`'s dimensions do not match the netlist and its
    /// pattern space.
    pub fn with_good_values_budget(
        netlist: &Netlist,
        good: GoodValues,
        budget: MemoryBudget,
    ) -> Result<Self, ndetect_sim::SimError> {
        let space = PatternSpace::new(netlist.num_inputs())?;
        assert_eq!(good.num_nodes(), netlist.num_nodes(), "good-value shape");
        assert_eq!(good.num_blocks(), space.num_blocks(), "good-value shape");
        Self::assemble(netlist, space, good, budget)
    }

    fn assemble(
        netlist: &Netlist,
        space: PatternSpace,
        good: GoodValues,
        budget: MemoryBudget,
    ) -> Result<Self, ndetect_sim::SimError> {
        // Cone arena + transpose + others-table setup: the structural
        // (non-simulating) half of simulator construction.
        let mut span = trace::span("sim.assemble");
        let reach = ReachabilityMatrix::compute(netlist);
        let n = netlist.num_nodes();
        let nb = space.num_blocks();

        // Flatten the per-node downstream cones into one contiguous CSR
        // arena (topological order within each row).
        let mut cone_offsets = Vec::with_capacity(n + 1);
        let mut cone_gates: Vec<NodeId> = Vec::new();
        cone_offsets.push(0u32);
        for i in 0..n {
            let d = NodeId::new(i);
            cone_gates.extend(
                netlist
                    .topo_order()
                    .iter()
                    .copied()
                    .filter(|&g| netlist.node(g).kind() != GateKind::Input && reach.reaches(d, g)),
            );
            cone_offsets.push(cone_gates.len() as u32);
        }

        // Row layout of the per-edge "all other fanins" table (one row
        // per fanin pin of every associative gate).
        let mut edge_offsets = Vec::with_capacity(n + 1);
        edge_offsets.push(0u32);
        let mut num_other_rows = 0usize;
        for i in 0..n {
            let node = netlist.node(NodeId::new(i));
            if has_others_rows(node.kind()) {
                num_other_rows += node.fanins().len();
            }
            edge_offsets.push(num_other_rows as u32);
        }

        // Per-worker kernel working set per block, in words: faulty
        // rows + good tile + others tile + acc + det. The budget picks
        // the widest tile that fits; the full block count means the
        // zero-overhead full-width mode.
        let words_per_block = 2 * n + num_other_rows + 2;
        let tile_width = budget.tile_width(words_per_block, nb);
        let kernel = if tile_width == nb { "full" } else { "tiled" };
        span.field("kernel", kernel);
        span.field("nodes", n);
        span.field("blocks", nb);
        // Library-level metric: which kernel the budget selected, across
        // every simulator built in this process.
        ndetect_obs::global()
            .counter(&format!("kernel_{kernel}_selected_total"))
            .inc();

        let (good_nm, others) = if tile_width == nb {
            // Full mode: materialize the node-major transpose (the
            // event kernel streams one node's words across all blocks,
            // so give it a contiguous row) and the others table once,
            // shared by every worker.
            let mut good_nm = RowMatrix::zeroed(n, nb);
            for b in 0..nb {
                let block = good.block(b);
                let words = good_nm.words_mut();
                for (i, &w) in block.iter().enumerate() {
                    words[i * nb + b] = w;
                }
            }
            let mut others = RowMatrix::zeroed(num_other_rows, nb);
            let mut run = zeroed_words(nb);
            fill_others(netlist, &good_nm, &mut others, &edge_offsets, &mut run);
            (good_nm, others)
        } else {
            // Tiled mode: no shared full-width tables — each worker
            // gathers per-tile slices into its scratch on demand.
            (RowMatrix::empty(), RowMatrix::empty())
        };

        // Cold per-circuit setup; a bool flag table is not a word buffer.
        #[allow(clippy::disallowed_methods)]
        let mut observed = vec![false; n];
        for &po in netlist.outputs() {
            observed[po.index()] = true;
        }

        Ok(FaultSimulator {
            space,
            good,
            reach,
            num_nodes: n,
            num_blocks: nb,
            budget,
            tile_width,
            num_other_rows,
            good_nm,
            cone_offsets,
            cone_gates,
            others,
            edge_offsets,
            observed,
        })
    }

    /// The exhaustive pattern space this simulator runs over.
    #[must_use]
    pub fn space(&self) -> &PatternSpace {
        &self.space
    }

    /// The precomputed fault-free values.
    #[must_use]
    pub fn good_values(&self) -> &GoodValues {
        &self.good
    }

    /// The structural reachability matrix (shared with bridging-fault
    /// enumeration).
    #[must_use]
    pub fn reachability(&self) -> &ReachabilityMatrix {
        &self.reach
    }

    /// Allocates scratch buffers sized for this simulator's circuit and
    /// kernel mode (full-width or tiled). One scratch serves any number
    /// of faults; workers should create one and reuse it (see
    /// [`FaultSimulator::detection_set_stuck_with`]).
    #[must_use]
    pub fn new_scratch(&self) -> SimScratch {
        if self.tile_width == self.num_blocks {
            SimScratch::new(self.num_nodes, self.num_blocks)
        } else {
            SimScratch::new_tiled(self.num_nodes, self.tile_width, self.num_other_rows)
        }
    }

    /// The memory budget this simulator was built under.
    #[must_use]
    pub fn mem_budget(&self) -> MemoryBudget {
        self.budget
    }

    /// The tile width in 64-vector blocks (equals the space's block
    /// count in full-width mode).
    #[must_use]
    pub fn tile_width(&self) -> usize {
        self.tile_width
    }

    /// Which kernel the budget selected: `"full"` (full-width shared
    /// tables, the unbounded fast path) or `"tiled"` (per-worker
    /// streamed tiles).
    #[must_use]
    pub fn kernel_mode(&self) -> &'static str {
        if self.tile_width == self.num_blocks {
            "full"
        } else {
            "tiled"
        }
    }

    /// Estimated per-worker data-plane bytes: faulty rows + good tile +
    /// others tile + accumulator + detection row, at the selected tile
    /// width. This is the quantity the [`MemoryBudget`] bounds.
    #[must_use]
    pub fn data_plane_bytes(&self) -> u64 {
        8 * (2 * self.num_nodes + self.num_other_rows + 2) as u64 * self.tile_width as u64
    }

    /// Node `i`'s strictly-downstream gates in topological order (CSR
    /// row of the cone arena).
    #[inline]
    fn cone(&self, node: NodeId) -> &[NodeId] {
        let lo = self.cone_offsets[node.index()] as usize;
        let hi = self.cone_offsets[node.index() + 1] as usize;
        &self.cone_gates[lo..hi]
    }

    /// The base block of the tile `scratch` currently addresses (0 in
    /// full-width mode, where rows span the whole space).
    #[inline]
    fn scratch_base(scratch: &SimScratch) -> usize {
        if scratch.is_tiled() {
            scratch.tile_start
        } else {
            0
        }
    }

    /// Loads the tile starting at block `tile_base` into a tiled
    /// scratch's private good/others tables (no-op in full-width mode
    /// or when that tile is already loaded — a worker sweeping many
    /// faults over one tile pays the gather once).
    fn prepare_tile(&self, netlist: &Netlist, tile_base: usize, scratch: &mut SimScratch) {
        if !scratch.is_tiled() || scratch.tile_start == tile_base {
            return;
        }
        let w = self.tile_width.min(self.num_blocks - tile_base);
        // Gather the node-major transpose of this tile from the
        // block-major good values. Stray columns of a narrow final tile
        // keep stale words; no column ≥ `w` is ever read.
        {
            let tw = scratch.tile_good.width();
            let tg = scratch.tile_good.words_mut();
            for c in 0..w {
                let block = self.good.block(tile_base + c);
                for (i, &word) in block.iter().enumerate() {
                    tg[i * tw + c] = word;
                }
            }
        }
        fill_others(
            netlist,
            &scratch.tile_good,
            &mut scratch.tile_others,
            &self.edge_offsets,
            &mut scratch.acc,
        );
        scratch.tile_start = tile_base;
    }

    /// The event-driven kernel: propagates the difference between the
    /// root's faulty row (already written to `scratch.rows` over
    /// `blocks` by the caller) and its fault-free row through the
    /// root's cone, accumulating per-block detection words into the
    /// scratch detection row.
    ///
    /// `blocks` are **global** block coordinates and must lie inside
    /// the tile `scratch` currently addresses (the whole space in
    /// full-width mode). Gates are evaluated only while some fanin is
    /// on the difference frontier, over only the block sub-range on
    /// which the root differs at all; the walk degenerates to cheap
    /// frontier checks as soon as the frontier dies. Zero heap
    /// allocations.
    fn propagate(
        &self,
        netlist: &Netlist,
        root: NodeId,
        blocks: Range<usize>,
        scratch: &mut SimScratch,
    ) {
        debug_assert!(
            scratch.fits(self.num_nodes, self.tile_width),
            "scratch shape"
        );
        scratch.begin_fault();
        let epoch = scratch.epoch;
        let SimScratch {
            rows,
            acc,
            det,
            frontier,
            det_lo,
            det_hi,
            tile_good,
            tile_others,
            tile_start,
            ..
        } = scratch;
        // One data plane, two sources: full mode reads the simulator's
        // shared full-width tables, tiled mode this worker's private
        // tile (both node-major RowMatrix — the kernel below cannot
        // tell them apart).
        let (good_rows, others_rows, base): (&RowMatrix, &RowMatrix, usize) =
            if tile_good.is_empty() {
                (&self.good_nm, &self.others, 0)
            } else {
                debug_assert!(*tile_start < self.num_blocks, "tile not prepared");
                (tile_good, tile_others, *tile_start)
            };
        debug_assert!(blocks.start >= base && blocks.end <= base + rows.width());

        // Tighten to the sub-range of columns on which the root
        // actually changed: no node anywhere can differ outside it.
        // (lo..hi are tile-local columns; det_lo/det_hi stay global.)
        let cols = blocks.start - base..blocks.end - base;
        let mut lo = usize::MAX;
        let mut hi = cols.start;
        {
            let faulty = &rows.row(root.index())[cols.clone()];
            let good = &good_rows.row(root.index())[cols.clone()];
            for (k, (&a, &b)) in faulty.iter().zip(good).enumerate() {
                if a ^ b != 0 {
                    if lo == usize::MAX {
                        lo = cols.start + k;
                    }
                    hi = cols.start + k + 1;
                }
            }
        }
        if lo == usize::MAX {
            // Fault inactive on this whole range: empty detection range.
            *det_lo = blocks.start;
            *det_hi = blocks.start;
            return;
        }
        *det_lo = base + lo;
        *det_hi = base + hi;
        let w = hi - lo;
        det[lo..hi].fill(0);

        frontier[root.index()] = epoch;
        if self.observed[root.index()] {
            rowops::or_diff_into(
                &mut det[lo..hi],
                &rows.row(root.index())[lo..hi],
                &good_rows.row(root.index())[lo..hi],
            );
        }

        for &g in self.cone(root) {
            let node = netlist.node(g);
            let fanins = node.fanins();
            // Frontier pruning: a gate none of whose fanins changed is
            // bit-identical to its fault-free self. (Once the frontier
            // dies, the rest of the cone walk is just these checks.)
            let mut changed_pin = usize::MAX;
            let mut num_changed = 0usize;
            for (pin, f) in fanins.iter().enumerate() {
                if frontier[f.index()] == epoch {
                    changed_pin = pin;
                    num_changed += 1;
                }
            }
            if num_changed == 0 {
                continue;
            }
            let kind = node.kind();
            let any = if num_changed == 1 && (has_others_rows(kind) || fanins.len() == 1) {
                // Fast path: exactly one fanin changed — one fused pass
                // combining the precomputed "all other fanins" row with
                // the changed row (for 1-fanin gates the row is the
                // changed fanin itself).
                let (changed, dst) =
                    rows.row_window_pair(fanins[changed_pin].index(), g.index(), lo..hi);
                let others = if has_others_rows(kind) {
                    let row = self.edge_offsets[g.index()] as usize + changed_pin;
                    &others_rows.row(row)[lo..hi]
                } else {
                    changed
                };
                let good_g = &good_rows.row(g.index())[lo..hi];
                let det_g = self.observed[g.index()].then_some(&mut det[lo..hi]);
                use rowops::fused_gate_update as fused;
                match kind {
                    GateKind::And => fused(others, changed, good_g, dst, det_g, |e, v| e & v),
                    GateKind::Nand => fused(others, changed, good_g, dst, det_g, |e, v| !(e & v)),
                    GateKind::Or => fused(others, changed, good_g, dst, det_g, |e, v| e | v),
                    GateKind::Nor => fused(others, changed, good_g, dst, det_g, |e, v| !(e | v)),
                    GateKind::Xor => fused(others, changed, good_g, dst, det_g, |e, v| e ^ v),
                    GateKind::Xnor => fused(others, changed, good_g, dst, det_g, |e, v| !(e ^ v)),
                    GateKind::Buf => fused(others, changed, good_g, dst, det_g, |_, v| v),
                    GateKind::Not => fused(others, changed, good_g, dst, det_g, |_, v| !v),
                    GateKind::Const0 | GateKind::Const1 | GateKind::Input => {
                        unreachable!("no fanins, so never on the frontier")
                    }
                }
            } else {
                // General path: several fanins changed — fold every
                // operand into the accumulator, then diff.
                {
                    let rows_r: &RowMatrix = rows;
                    let frontier_r: &[u64] = frontier;
                    let op = |_pin: usize, f: NodeId| -> &[u64] {
                        if frontier_r[f.index()] == epoch {
                            &rows_r.row(f.index())[lo..hi]
                        } else {
                            &good_rows.row(f.index())[lo..hi]
                        }
                    };
                    eval_gate_rows(kind, fanins, op, &mut acc[..w]);
                }
                let good_g = &good_rows.row(g.index())[lo..hi];
                let any = rowops::diff_any(&acc[..w], good_g);
                if any != 0 {
                    rows.row_mut(g.index())[lo..hi].copy_from_slice(&acc[..w]);
                    if self.observed[g.index()] {
                        rowops::or_diff_into(&mut det[lo..hi], &acc[..w], good_g);
                    }
                }
                any
            };
            // A gate that matches its good row stays off the frontier
            // (downstream operand reads fall back to the identical good
            // row) — the early exit that kills dead frontiers.
            if any != 0 {
                frontier[g.index()] = epoch;
            }
        }
    }

    /// Appends the detection row back out as per-block words (masked to
    /// the space; blocks outside the fault's active range read as zero).
    fn collect_det_into(&self, blocks: Range<usize>, scratch: &SimScratch, out: &mut Vec<u64>) {
        let base = Self::scratch_base(scratch);
        out.extend(blocks.map(|b| {
            if b >= scratch.det_lo && b < scratch.det_hi {
                scratch.det[b - base] & self.space.block_mask(b)
            } else {
                0
            }
        }));
    }

    /// Splits a block range at tile boundaries and runs `body` on each
    /// tile-resident sub-range with the tile loaded. Blocks are
    /// independent, so any partition of the range concatenates back to
    /// the full-range result; in full-width mode this degenerates to a
    /// single call with no gathering.
    fn for_each_tile_span(
        &self,
        netlist: &Netlist,
        blocks: Range<usize>,
        scratch: &mut SimScratch,
        mut body: impl FnMut(&Self, Range<usize>, &mut SimScratch),
    ) {
        let mut start = blocks.start;
        while start < blocks.end {
            let tile_base = start - start % self.tile_width;
            let end = blocks.end.min(tile_base + self.tile_width);
            self.prepare_tile(netlist, tile_base, scratch);
            body(self, start..end, scratch);
            start = end;
        }
    }

    /// Detection words of a stuck-at fault over a contiguous block
    /// range (streamed tile by tile under a bounded budget).
    pub(crate) fn stuck_words(
        &self,
        netlist: &Netlist,
        fault: StuckAtFault,
        blocks: Range<usize>,
        scratch: &mut SimScratch,
    ) -> Vec<u64> {
        let line = netlist.lines().line(fault.line);
        // Output-slot branch faults never touch the kernel at all:
        // detected exactly where the good driver differs from the stuck
        // value (only that output observation is faulty).
        if let LineKind::Branch {
            node,
            sink: Sink::OutputSlot { .. },
        } = *line.kind()
        {
            let vword = stuck_word(fault.value);
            return blocks
                .map(|b| (self.good.node_word(b, node) ^ vword) & self.space.block_mask(b))
                .collect();
        }
        let mut out = Vec::with_capacity(blocks.len());
        self.for_each_tile_span(netlist, blocks, scratch, |sim, span, scratch| {
            sim.stuck_words_span(netlist, fault, span, scratch, &mut out);
        });
        out
    }

    /// One tile-resident span of [`Self::stuck_words`]: writes the root
    /// row, propagates, and appends the masked detection words.
    fn stuck_words_span(
        &self,
        netlist: &Netlist,
        fault: StuckAtFault,
        span: Range<usize>,
        scratch: &mut SimScratch,
        out: &mut Vec<u64>,
    ) {
        let vword = stuck_word(fault.value);
        let line = netlist.lines().line(fault.line);
        let base = Self::scratch_base(scratch);
        let cols = span.start - base..span.end - base;

        match *line.kind() {
            LineKind::Stem { node } => {
                scratch.rows.row_mut(node.index())[cols].fill(vword);
                self.propagate(netlist, node, span.clone(), scratch);
                self.collect_det_into(span, scratch, out);
            }
            LineKind::Branch { node: _, sink } => match sink {
                Sink::GatePin { gate, pin } => {
                    // Root row: the sink gate evaluated with the
                    // overridden operand (a constant row), all other
                    // operands fault-free.
                    let gnode = netlist.node(gate);
                    let w = cols.len();
                    {
                        let SimScratch {
                            rows,
                            acc,
                            tile_good,
                            ..
                        } = scratch;
                        let good_rows: &RowMatrix = if tile_good.is_empty() {
                            &self.good_nm
                        } else {
                            tile_good
                        };
                        acc[..w].fill(vword);
                        let acc_r: &[u64] = &acc[..w];
                        let op = |i: usize, f: NodeId| -> &[u64] {
                            if i == pin {
                                acc_r
                            } else {
                                &good_rows.row(f.index())[cols.clone()]
                            }
                        };
                        eval_gate_rows(
                            gnode.kind(),
                            gnode.fanins(),
                            op,
                            &mut rows.row_mut(gate.index())[cols.clone()],
                        );
                    }
                    self.propagate(netlist, gate, span.clone(), scratch);
                    self.collect_det_into(span, scratch, out);
                }
                Sink::OutputSlot { slot: _ } => {
                    unreachable!("handled without the kernel in stuck_words")
                }
            },
        }
    }

    /// Detection words of a bridging fault over a contiguous block
    /// range (streamed tile by tile under a bounded budget).
    pub(crate) fn bridge_words(
        &self,
        netlist: &Netlist,
        fault: &BridgingFault,
        blocks: Range<usize>,
        scratch: &mut SimScratch,
    ) -> Vec<u64> {
        let mut out = Vec::with_capacity(blocks.len());
        self.for_each_tile_span(netlist, blocks, scratch, |sim, span, scratch| {
            sim.bridge_words_span(netlist, fault, span, scratch, &mut out);
        });
        out
    }

    /// One tile-resident span of [`Self::bridge_words`].
    fn bridge_words_span(
        &self,
        netlist: &Netlist,
        fault: &BridgingFault,
        span: Range<usize>,
        scratch: &mut SimScratch,
        out: &mut Vec<u64>,
    ) {
        let victim = netlist.lines().line(fault.victim).driver();
        let aggressor = netlist.lines().line(fault.aggressor).driver();
        let base = Self::scratch_base(scratch);

        // Root row: the victim flips exactly on the activated vectors
        // (fault-free victim == a1 and aggressor == a2) — one streaming
        // pass over two contiguous node rows. Blocks with an empty
        // activation never enter propagation.
        {
            let SimScratch {
                rows, tile_good, ..
            } = scratch;
            let good_rows: &RowMatrix = if tile_good.is_empty() {
                &self.good_nm
            } else {
                tile_good
            };
            let vrow = rows.row_mut(victim.index());
            for b in span.clone() {
                let c = b - base;
                let gv = good_rows.row(victim.index())[c];
                let ga = good_rows.row(aggressor.index())[c];
                let cond = (if fault.victim_value { gv } else { !gv })
                    & (if fault.aggressor_value { ga } else { !ga })
                    & self.space.block_mask(b);
                vrow[c] = gv ^ cond;
            }
        }
        self.propagate(netlist, victim, span.clone(), scratch);
        self.collect_det_into(span, scratch, out);
    }

    /// Computes `T(f)` for a stuck-at fault (stem or branch).
    ///
    /// # Panics
    ///
    /// Panics if the fault's line does not belong to `netlist`, or if
    /// `netlist` is not the netlist this simulator was built for.
    #[must_use]
    pub fn detection_set_stuck(&self, netlist: &Netlist, fault: StuckAtFault) -> VectorSet {
        self.detection_set_stuck_threaded(netlist, fault, 1)
    }

    /// Computes `T(f)` reusing a caller-owned [`SimScratch`] — the
    /// zero-allocation path for loops over many faults (allocate the
    /// scratch once with [`FaultSimulator::new_scratch`], then simulate
    /// every fault through it).
    ///
    /// # Panics
    ///
    /// Panics if the fault's line does not belong to `netlist`, or if
    /// `netlist` is not the netlist this simulator was built for.
    #[must_use]
    pub fn detection_set_stuck_with(
        &self,
        netlist: &Netlist,
        fault: StuckAtFault,
        scratch: &mut SimScratch,
    ) -> VectorSet {
        assert_eq!(netlist.num_nodes(), self.num_nodes, "wrong netlist");
        let words = self.stuck_words(netlist, fault, 0..self.num_blocks, scratch);
        VectorSet::from_block_words(self.space.num_patterns(), words)
    }

    /// Computes `T(f)` with the 64-vector pattern blocks sharded over up
    /// to `num_threads` workers, each owning its own [`SimScratch`].
    /// Every block is simulated independently, so the result is
    /// bit-identical to the serial computation for any thread count;
    /// worthwhile on wide pattern spaces (many blocks).
    ///
    /// # Panics
    ///
    /// Panics if the fault's line does not belong to `netlist`, or if
    /// `netlist` is not the netlist this simulator was built for.
    #[must_use]
    pub fn detection_set_stuck_threaded(
        &self,
        netlist: &Netlist,
        fault: StuckAtFault,
        num_threads: usize,
    ) -> VectorSet {
        assert_eq!(netlist.num_nodes(), self.num_nodes, "wrong netlist");
        let words = parallel::run_tiled_with(
            num_threads,
            self.num_blocks,
            || self.new_scratch(),
            |scratch, blocks| self.stuck_words(netlist, fault, blocks, scratch),
        );
        VectorSet::from_block_words(self.space.num_patterns(), words)
    }

    /// Computes `T(g)` for a four-way bridging fault.
    ///
    /// # Panics
    ///
    /// Panics if the fault's lines are not stems of `netlist`, or if
    /// `netlist` is not the netlist this simulator was built for.
    #[must_use]
    pub fn detection_set_bridge(&self, netlist: &Netlist, fault: &BridgingFault) -> VectorSet {
        self.detection_set_bridge_threaded(netlist, fault, 1)
    }

    /// Computes `T(g)` reusing a caller-owned [`SimScratch`] (see
    /// [`FaultSimulator::detection_set_stuck_with`]).
    ///
    /// # Panics
    ///
    /// Panics if the fault's lines are not stems of `netlist`, or if
    /// `netlist` is not the netlist this simulator was built for.
    #[must_use]
    pub fn detection_set_bridge_with(
        &self,
        netlist: &Netlist,
        fault: &BridgingFault,
        scratch: &mut SimScratch,
    ) -> VectorSet {
        assert_eq!(netlist.num_nodes(), self.num_nodes, "wrong netlist");
        debug_assert!(
            netlist.lines().line(fault.victim).kind().is_stem()
                && netlist.lines().line(fault.aggressor).kind().is_stem(),
            "bridging faults live on stems"
        );
        let words = self.bridge_words(netlist, fault, 0..self.num_blocks, scratch);
        VectorSet::from_block_words(self.space.num_patterns(), words)
    }

    /// Computes `T(g)` with the pattern blocks sharded over up to
    /// `num_threads` workers (see
    /// [`Self::detection_set_stuck_threaded`]).
    ///
    /// # Panics
    ///
    /// Panics if the fault's lines are not stems of `netlist`, or if
    /// `netlist` is not the netlist this simulator was built for.
    #[must_use]
    pub fn detection_set_bridge_threaded(
        &self,
        netlist: &Netlist,
        fault: &BridgingFault,
        num_threads: usize,
    ) -> VectorSet {
        assert_eq!(netlist.num_nodes(), self.num_nodes, "wrong netlist");
        debug_assert!(
            netlist.lines().line(fault.victim).kind().is_stem()
                && netlist.lines().line(fault.aggressor).kind().is_stem(),
            "bridging faults live on stems"
        );
        let words = parallel::run_tiled_with(
            num_threads,
            self.num_blocks,
            || self.new_scratch(),
            |scratch, blocks| self.bridge_words(netlist, fault, blocks, scratch),
        );
        VectorSet::from_block_words(self.space.num_patterns(), words)
    }
}

/// The reference full-cone kernel, kept as the differential-testing
/// oracle and benchmark baseline.
impl FaultSimulator {
    /// The primary-output nodes observing `root` or its cone.
    fn observable_outputs_of(&self, netlist: &Netlist, root: NodeId) -> Vec<NodeId> {
        netlist
            .outputs()
            .iter()
            .copied()
            .filter(|&po| po == root || self.reach.reaches(root, po))
            .collect()
    }

    /// Per-fault buffers for a full-cone re-simulation rooted at `root`:
    /// the observable outputs, the faulty-value buffer, and the
    /// cone-membership mask. Allocated once per fault, reused across
    /// blocks.
    fn cone_buffers(&self, netlist: &Netlist, root: NodeId) -> (Vec<NodeId>, Vec<u64>, Vec<bool>) {
        let outputs = self.observable_outputs_of(netlist, root);
        // Reference oracle, off the budgeted data plane by design.
        #[allow(clippy::disallowed_methods)]
        let mut in_cone = vec![false; self.num_nodes];
        in_cone[root.index()] = true;
        for &g in self.cone(root) {
            in_cone[g.index()] = true;
        }
        (outputs, zeroed_words(self.num_nodes), in_cone)
    }

    /// Re-evaluates every gate of `root`'s cone for one block. `fv`
    /// holds faulty words (valid only where `in_cone`); operands outside
    /// the cone come from the good values. `fv[root]` must be set by the
    /// caller.
    fn eval_cone(
        &self,
        netlist: &Netlist,
        block: usize,
        root: NodeId,
        fv: &mut [u64],
        in_cone: &[bool],
    ) {
        let goodb = self.good.block(block);
        for &g in self.cone(root) {
            let node = netlist.node(g);
            let kind = node.kind();
            let fanins = node.fanins();
            let operand = |f: NodeId| -> u64 {
                if in_cone[f.index()] {
                    fv[f.index()]
                } else {
                    goodb[f.index()]
                }
            };
            let word = match kind {
                GateKind::And | GateKind::Nand => {
                    let acc = fanins.iter().fold(u64::MAX, |a, &f| a & operand(f));
                    if kind == GateKind::Nand {
                        !acc
                    } else {
                        acc
                    }
                }
                GateKind::Or | GateKind::Nor => {
                    let acc = fanins.iter().fold(0u64, |a, &f| a | operand(f));
                    if kind == GateKind::Nor {
                        !acc
                    } else {
                        acc
                    }
                }
                GateKind::Xor | GateKind::Xnor => {
                    let acc = fanins.iter().fold(0u64, |a, &f| a ^ operand(f));
                    if kind == GateKind::Xnor {
                        !acc
                    } else {
                        acc
                    }
                }
                GateKind::Buf => operand(fanins[0]),
                GateKind::Not => !operand(fanins[0]),
                GateKind::Const0 => 0,
                GateKind::Const1 => u64::MAX,
                GateKind::Input => unreachable!("inputs are never in a cone"),
            };
            fv[g.index()] = word;
        }
    }

    fn detection_word(&self, block: usize, outputs: &[NodeId], fv: &[u64]) -> u64 {
        let goodb = self.good.block(block);
        let mut det = 0u64;
        for &po in outputs {
            det |= fv[po.index()] ^ goodb[po.index()];
        }
        det & self.space.block_mask(block)
    }

    /// Computes `T(f)` with the reference full-cone kernel: every
    /// downstream gate of the fault site is re-evaluated on every
    /// block, whether or not the fault effect reaches it. Bit-identical
    /// to [`Self::detection_set_stuck`]; kept as the
    /// differential-testing oracle and the baseline of the
    /// `event_driven` benchmark.
    ///
    /// # Panics
    ///
    /// Panics if the fault's line does not belong to `netlist`, or if
    /// `netlist` is not the netlist this simulator was built for.
    #[must_use]
    pub fn detection_set_stuck_full_cone(
        &self,
        netlist: &Netlist,
        fault: StuckAtFault,
    ) -> VectorSet {
        assert_eq!(netlist.num_nodes(), self.num_nodes, "wrong netlist");
        let vword = stuck_word(fault.value);
        let line = netlist.lines().line(fault.line);
        let blocks = 0..self.num_blocks;

        let words: Vec<u64> = match *line.kind() {
            LineKind::Stem { node } => {
                let (outputs, mut fv, in_cone) = self.cone_buffers(netlist, node);
                blocks
                    .map(|block| {
                        fv[node.index()] = vword;
                        self.eval_cone(netlist, block, node, &mut fv, &in_cone);
                        self.detection_word(block, &outputs, &fv)
                    })
                    .collect()
            }
            LineKind::Branch { node, sink } => match sink {
                Sink::GatePin { gate, pin } => {
                    // Operand buffers hoisted out of the block loop: the
                    // sink gate is evaluated through the pin-override
                    // primitive, with no per-block allocations.
                    let (outputs, mut fv, in_cone) = self.cone_buffers(netlist, gate);
                    let gnode = netlist.node(gate);
                    blocks
                        .map(|block| {
                            let goodb = self.good.block(block);
                            fv[gate.index()] = eval_gate_word_pin_override(
                                gnode.kind(),
                                gnode.fanins(),
                                goodb,
                                pin,
                                vword,
                            );
                            self.eval_cone(netlist, block, gate, &mut fv, &in_cone);
                            self.detection_word(block, &outputs, &fv)
                        })
                        .collect()
                }
                Sink::OutputSlot { slot: _ } => blocks
                    .map(|block| {
                        let g = self.good.node_word(block, node);
                        (g ^ vword) & self.space.block_mask(block)
                    })
                    .collect(),
            },
        };
        VectorSet::from_block_words(self.space.num_patterns(), words)
    }

    /// Computes `T(g)` with the reference full-cone kernel (see
    /// [`Self::detection_set_stuck_full_cone`]).
    ///
    /// # Panics
    ///
    /// Panics if the fault's lines are not stems of `netlist`, or if
    /// `netlist` is not the netlist this simulator was built for.
    #[must_use]
    pub fn detection_set_bridge_full_cone(
        &self,
        netlist: &Netlist,
        fault: &BridgingFault,
    ) -> VectorSet {
        assert_eq!(netlist.num_nodes(), self.num_nodes, "wrong netlist");
        let victim = netlist.lines().line(fault.victim).driver();
        let aggressor = netlist.lines().line(fault.aggressor).driver();
        let (outputs, mut fv, in_cone) = self.cone_buffers(netlist, victim);

        let words: Vec<u64> = (0..self.num_blocks)
            .map(|block| {
                let gv = self.good.node_word(block, victim);
                let ga = self.good.node_word(block, aggressor);
                let cond = (if fault.victim_value { gv } else { !gv })
                    & (if fault.aggressor_value { ga } else { !ga })
                    & self.space.block_mask(block);
                if cond == 0 {
                    return 0;
                }
                fv[victim.index()] = gv ^ cond;
                self.eval_cone(netlist, block, victim, &mut fv, &in_cone);
                self.detection_word(block, &outputs, &fv)
            })
            .collect();
        VectorSet::from_block_words(self.space.num_patterns(), words)
    }
}

/// Three-valued detection check for the paper's Definition 2.
///
/// Returns `true` iff the partially specified vector `tij` **definitely**
/// detects the stuck-at fault: some primary output has definite and
/// different values in the fault-free and faulty circuits under
/// pessimistic three-valued simulation.
///
/// ```
/// use ndetect_netlist::NetlistBuilder;
/// use ndetect_sim::{PartialVector, PatternSpace};
/// use ndetect_faults::{threeval_detects_stuck, StuckAtFault};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new("and2");
/// let a = b.input("a");
/// let c = b.input("c");
/// let g = b.and("g", &[a, c])?;
/// b.output(g);
/// let n = b.build()?;
/// let space = PatternSpace::new(2)?;
/// let fault = StuckAtFault::new(n.lines().stem(g), false);
/// // 1X does not definitely detect g/0; 11 does.
/// let t_1x = PartialVector::common_bits(&space, 2, 3);
/// assert!(!threeval_detects_stuck(&n, fault, &t_1x));
/// let t_11 = PartialVector::from_vector(&space, 3);
/// assert!(threeval_detects_stuck(&n, fault, &t_11));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn threeval_detects_stuck(
    netlist: &Netlist,
    fault: StuckAtFault,
    vector: &PartialVector,
) -> bool {
    let inputs = vector.trits();
    let good = eval_trits_all(netlist, &inputs);

    let line = netlist.lines().line(fault.line);
    let fault_trit = Trit::from_bool(fault.value);

    // Faulty levelized pass with injection (cold three-valued path,
    // not a word buffer).
    #[allow(clippy::disallowed_methods)]
    let mut faulty = vec![Trit::X; netlist.num_nodes()];
    for (&pi, &v) in netlist.inputs().iter().zip(&inputs) {
        faulty[pi.index()] = v;
    }
    let (stem_forced, pin_override): (Option<NodeId>, Option<(NodeId, usize)>) = match *line.kind()
    {
        LineKind::Stem { node } => (Some(node), None),
        LineKind::Branch { node: _, sink } => match sink {
            Sink::GatePin { gate, pin } => (None, Some((gate, pin))),
            Sink::OutputSlot { .. } => (None, None),
        },
    };
    if let Some(node) = stem_forced {
        faulty[node.index()] = fault_trit;
    }
    let mut operands: Vec<Trit> = Vec::new();
    for &id in netlist.topo_order() {
        let node = netlist.node(id);
        if node.kind() == GateKind::Input {
            continue;
        }
        if stem_forced == Some(id) {
            continue; // value forced, no evaluation
        }
        operands.clear();
        operands.extend(node.fanins().iter().map(|f| faulty[f.index()]));
        if let Some((gate, pin)) = pin_override {
            if gate == id {
                operands[pin] = fault_trit;
            }
        }
        faulty[id.index()] = eval_gate_trit(node.kind(), &operands);
    }
    if let Some(node) = stem_forced {
        faulty[node.index()] = fault_trit;
    }

    // Observation: definite difference on some output slot.
    let po_branch_slot = match *line.kind() {
        LineKind::Branch {
            sink: Sink::OutputSlot { slot },
            ..
        } => Some(slot),
        _ => None,
    };
    for (slot, &po) in netlist.outputs().iter().enumerate() {
        let g = good[po.index()];
        let f = if po_branch_slot == Some(slot) {
            fault_trit
        } else {
            faulty[po.index()]
        };
        if let (Some(gb), Some(fb)) = (g.to_option(), f.to_option()) {
            if gb != fb {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;
    use crate::stuck_at::all_stuck_at_faults;
    use ndetect_netlist::NetlistBuilder;

    fn figure1() -> Netlist {
        let mut b = NetlistBuilder::new("figure1");
        let i1 = b.input("1");
        let i2 = b.input("2");
        let i3 = b.input("3");
        let i4 = b.input("4");
        let g9 = b.and("9", &[i1, i2]).unwrap();
        let g10 = b.and("10", &[i2, i3]).unwrap();
        let g11 = b.or("11", &[i3, i4]).unwrap();
        b.output(g9);
        b.output(g10);
        b.output(g11);
        b.build().unwrap()
    }

    /// Oracle: detection set by brute-force scalar simulation with the
    /// fault applied through explicit line semantics.
    fn oracle_stuck(netlist: &Netlist, fault: StuckAtFault, space: &PatternSpace) -> Vec<usize> {
        let mut detected = Vec::new();
        for v in 0..space.num_patterns() {
            let bits = space.vector_bits(v);
            let good = netlist.eval_bool(&bits);
            let faulty = oracle_eval_faulty(netlist, fault, &bits);
            if good != faulty {
                detected.push(v);
            }
        }
        detected
    }

    fn oracle_eval_faulty(netlist: &Netlist, fault: StuckAtFault, bits: &[bool]) -> Vec<bool> {
        let line = netlist.lines().line(fault.line);
        let mut values = vec![false; netlist.num_nodes()];
        for (pi, &v) in netlist.inputs().iter().zip(bits) {
            values[pi.index()] = v;
        }
        let (stem_forced, pin_override) = match *line.kind() {
            LineKind::Stem { node } => (Some(node), None),
            LineKind::Branch { sink, .. } => match sink {
                Sink::GatePin { gate, pin } => (None, Some((gate, pin))),
                Sink::OutputSlot { .. } => (None, None),
            },
        };
        for &id in netlist.topo_order() {
            let node = netlist.node(id);
            if node.kind() != GateKind::Input {
                let mut ops: Vec<bool> = node.fanins().iter().map(|f| values[f.index()]).collect();
                if let Some((g, p)) = pin_override {
                    if g == id {
                        ops[p] = fault.value;
                    }
                }
                values[id.index()] = node.kind().eval_bool(&ops);
            }
            if stem_forced == Some(id) {
                values[id.index()] = fault.value;
            }
        }
        if let Some(node) = stem_forced {
            values[node.index()] = fault.value;
        }
        let po_branch_slot = match *line.kind() {
            LineKind::Branch {
                sink: Sink::OutputSlot { slot },
                ..
            } => Some(slot),
            _ => None,
        };
        netlist
            .outputs()
            .iter()
            .enumerate()
            .map(|(slot, &po)| {
                if po_branch_slot == Some(slot) {
                    fault.value
                } else {
                    values[po.index()]
                }
            })
            .collect()
    }

    #[test]
    fn stuck_detection_sets_match_oracle_on_figure1() {
        let n = figure1();
        let sim = FaultSimulator::new(&n).unwrap();
        for fault in all_stuck_at_faults(&n) {
            let fast = sim.detection_set_stuck(&n, fault).to_vec();
            let slow = oracle_stuck(&n, fault, sim.space());
            assert_eq!(fast, slow, "fault {}", fault.name(&n));
        }
    }

    #[test]
    fn event_driven_equals_full_cone_on_figure1() {
        let n = figure1();
        let sim = FaultSimulator::new(&n).unwrap();
        let mut scratch = sim.new_scratch();
        for fault in all_stuck_at_faults(&n) {
            let event = sim.detection_set_stuck_with(&n, fault, &mut scratch);
            let oracle = sim.detection_set_stuck_full_cone(&n, fault);
            assert_eq!(event, oracle, "fault {}", fault.name(&n));
        }
    }

    #[test]
    fn scratch_reuse_across_faults_is_clean() {
        // Interleave faults through one scratch and compare against
        // fresh-scratch runs: stale state must never leak.
        let n = figure1();
        let sim = FaultSimulator::new(&n).unwrap();
        let faults = all_stuck_at_faults(&n);
        let mut shared = sim.new_scratch();
        for _round in 0..3 {
            for &fault in &faults {
                let with_shared = sim.detection_set_stuck_with(&n, fault, &mut shared);
                let mut fresh = sim.new_scratch();
                let with_fresh = sim.detection_set_stuck_with(&n, fault, &mut fresh);
                assert_eq!(with_shared, with_fresh, "fault {}", fault.name(&n));
            }
        }
    }

    #[test]
    fn paper_table1_detection_sets() {
        let n = figure1();
        let sim = FaultSimulator::new(&n).unwrap();
        let by_paper = |paper_line: usize, v: bool| -> Vec<usize> {
            let line = ndetect_netlist::LineId::new(paper_line - 1);
            sim.detection_set_stuck(&n, StuckAtFault::new(line, v))
                .to_vec()
        };
        assert_eq!(by_paper(1, true), vec![4, 5, 6, 7]); // f0 = 1/1
        assert_eq!(by_paper(2, false), vec![6, 7, 12, 13, 14, 15]); // f1 = 2/0
        assert_eq!(by_paper(3, false), vec![2, 6, 7, 10, 14, 15]); // f3 = 3/0
        assert_eq!(by_paper(8, false), vec![2, 6, 10, 14]); // f9 = 8/0
        assert_eq!(by_paper(9, true), (0..12).collect::<Vec<_>>()); // f11 = 9/1
        assert_eq!(by_paper(10, false), vec![6, 7, 14, 15]); // f12 = 10/0
        assert_eq!(
            by_paper(11, false),
            vec![1, 2, 3, 5, 6, 7, 9, 10, 11, 13, 14, 15]
        ); // f14 = 11/0
    }

    #[test]
    fn paper_bridging_detection_sets() {
        let n = figure1();
        let sim = FaultSimulator::new(&n).unwrap();
        let stem = |name: &str| n.lines().stem(n.node_by_name(name).unwrap());
        // g0 = (9,0,10,1): T = {6,7}.
        let g0 = BridgingFault::new(stem("9"), false, stem("10"), true);
        assert_eq!(sim.detection_set_bridge(&n, &g0).to_vec(), vec![6, 7]);
        assert_eq!(
            sim.detection_set_bridge_full_cone(&n, &g0).to_vec(),
            vec![6, 7]
        );
        // g6 = (11,0,9,1): T = {12}.
        let g6 = BridgingFault::new(stem("11"), false, stem("9"), true);
        assert_eq!(sim.detection_set_bridge(&n, &g6).to_vec(), vec![12]);
    }

    #[test]
    fn bridge_oracle_cross_check() {
        // Brute-force bridging oracle on a multi-level circuit.
        let mut b = NetlistBuilder::new("ml");
        let a = b.input("a");
        let c = b.input("c");
        let d = b.input("d");
        let e = b.input("e");
        let g1 = b.and("g1", &[a, c]).unwrap();
        let g2 = b.or("g2", &[d, e]).unwrap();
        let g3 = b.nand("g3", &[g1, d]).unwrap();
        b.output(g3);
        b.output(g2);
        let n = b.build().unwrap();
        let sim = FaultSimulator::new(&n).unwrap();
        let space = sim.space();
        // Bridge between g1 (victim) and g2 (aggressor): non-feedback.
        for (a1, a2) in [(false, true), (true, false)] {
            let fault = BridgingFault::new(n.lines().stem(g1), a1, n.lines().stem(g2), a2);
            let fast = sim.detection_set_bridge(&n, &fault).to_vec();
            let mut slow = Vec::new();
            for v in 0..space.num_patterns() {
                let bits = space.vector_bits(v);
                let all = n.eval_bool_all(&bits);
                let gv = all[g1.index()];
                let ga = all[g2.index()];
                if gv != a1 || ga != a2 {
                    continue; // not activated
                }
                // Victim flips; re-evaluate downstream by brute force.
                let mut vals = all.clone();
                vals[g1.index()] = !gv;
                for &id in n.topo_order() {
                    let node = n.node(id);
                    if node.kind() == GateKind::Input || id == g1 {
                        continue;
                    }
                    let ops: Vec<bool> = node.fanins().iter().map(|f| vals[f.index()]).collect();
                    vals[id.index()] = node.kind().eval_bool(&ops);
                }
                let good_out: Vec<bool> = n.outputs().iter().map(|&po| all[po.index()]).collect();
                let bad_out: Vec<bool> = n.outputs().iter().map(|&po| vals[po.index()]).collect();
                if good_out != bad_out {
                    slow.push(v);
                }
            }
            assert_eq!(fast, slow, "bridge ({a1},{a2})");
        }
    }

    #[test]
    fn threeval_detection_is_conservative_wrt_completions() {
        // If tij detects under 3-valued logic, every completion detects
        // under 2-valued logic.
        let n = figure1();
        let sim = FaultSimulator::new(&n).unwrap();
        let space = *sim.space();
        for fault in all_stuck_at_faults(&n) {
            let t = sim.detection_set_stuck(&n, fault);
            for ti in 0..16 {
                for tj in 0..16 {
                    let tij = PartialVector::common_bits(&space, ti, tj);
                    if threeval_detects_stuck(&n, fault, &tij) {
                        for v in 0..16 {
                            if tij.is_completion(v) {
                                assert!(
                                    t.contains(v),
                                    "fault {} tij={tij} completion {v}",
                                    fault.name(&n)
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn threeval_on_full_vector_equals_two_valued_detection() {
        let n = figure1();
        let sim = FaultSimulator::new(&n).unwrap();
        let space = *sim.space();
        for fault in all_stuck_at_faults(&n) {
            let t = sim.detection_set_stuck(&n, fault);
            for v in 0..16 {
                let pv = PartialVector::from_vector(&space, v);
                assert_eq!(
                    threeval_detects_stuck(&n, fault, &pv),
                    t.contains(v),
                    "fault {} v={v}",
                    fault.name(&n)
                );
            }
        }
    }
}
