//! Fault injection over bit-parallel exhaustive simulation, serial or
//! sharded over 64-vector pattern blocks.

use crate::bridging::BridgingFault;
use crate::stuck_at::StuckAtFault;
use ndetect_netlist::{GateKind, LineKind, Netlist, NodeId, ReachabilityMatrix, Sink};
use ndetect_sim::{
    eval_gate_trit, eval_gate_word, eval_trits_all, parallel, GoodValues, PartialVector,
    PatternSpace, Trit, VectorSet,
};
use std::ops::Range;

fn stuck_word(value: bool) -> u64 {
    if value {
        u64::MAX
    } else {
        0
    }
}

/// Computes detection sets `T(h)` by injecting one fault at a time into a
/// cone-restricted bit-parallel exhaustive simulation.
///
/// Construction precomputes, once per circuit:
///
/// * the fault-free value of every node on every vector ([`GoodValues`]);
/// * for every node, the topologically-sorted list of downstream gates
///   that must be re-evaluated when that node's value changes, and the
///   primary-output slots that can observe the change.
///
/// Per fault, only the fanout cone of the fault site is re-simulated;
/// everything else is read from the good values. Bridging faults
/// additionally skip any 64-vector block on which the activation
/// condition never holds.
///
/// ```
/// use ndetect_netlist::NetlistBuilder;
/// use ndetect_faults::{FaultSimulator, StuckAtFault};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new("and2");
/// let a = b.input("a");
/// let c = b.input("c");
/// let g = b.and("g", &[a, c])?;
/// b.output(g);
/// let n = b.build()?;
/// let sim = FaultSimulator::new(&n)?;
/// // g stuck-at-0 is detected only when both inputs are 1 (vector 3).
/// let stem_g = n.lines().stem(g);
/// let t = sim.detection_set_stuck(&n, StuckAtFault::new(stem_g, false));
/// assert_eq!(t.to_vec(), vec![3]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct FaultSimulator {
    space: PatternSpace,
    good: GoodValues,
    reach: ReachabilityMatrix,
    /// Per node: strictly-downstream gates in topological order.
    cones: Vec<Vec<NodeId>>,
    /// Per node: `(slot, po_node)` pairs observing the node or its cone.
    affected_pos: Vec<Vec<(usize, NodeId)>>,
}

impl FaultSimulator {
    /// Prepares a simulator for `netlist` over its exhaustive input space.
    ///
    /// # Errors
    ///
    /// Returns [`ndetect_sim::SimError`] if the circuit has too many inputs
    /// for exhaustive simulation.
    pub fn new(netlist: &Netlist) -> Result<Self, ndetect_sim::SimError> {
        Self::with_threads(netlist, 1)
    }

    /// Prepares a simulator, computing the fault-free values with up to
    /// `num_threads` workers (the blocks of [`GoodValues`] are sharded;
    /// the result is identical for every thread count).
    ///
    /// # Errors
    ///
    /// Returns [`ndetect_sim::SimError`] if the circuit has too many inputs
    /// for exhaustive simulation.
    pub fn with_threads(
        netlist: &Netlist,
        num_threads: usize,
    ) -> Result<Self, ndetect_sim::SimError> {
        let space = PatternSpace::new(netlist.num_inputs())?;
        let good = GoodValues::compute_with(netlist, &space, num_threads);
        Self::assemble(netlist, space, good)
    }

    /// Prepares a simulator around **precomputed** fault-free values
    /// (e.g. deserialized from the on-disk artifact store), skipping the
    /// good-value simulation pass. Only the cheap structural tables
    /// (reachability, fanout cones) are recomputed.
    ///
    /// # Errors
    ///
    /// Returns [`ndetect_sim::SimError`] if the circuit has too many
    /// inputs for exhaustive simulation.
    ///
    /// # Panics
    ///
    /// Panics if `good`'s dimensions do not match the netlist and its
    /// pattern space — callers deserializing untrusted bytes must
    /// validate the shape first.
    pub fn with_good_values(
        netlist: &Netlist,
        good: GoodValues,
    ) -> Result<Self, ndetect_sim::SimError> {
        let space = PatternSpace::new(netlist.num_inputs())?;
        assert_eq!(good.num_nodes(), netlist.num_nodes(), "good-value shape");
        assert_eq!(good.num_blocks(), space.num_blocks(), "good-value shape");
        Self::assemble(netlist, space, good)
    }

    fn assemble(
        netlist: &Netlist,
        space: PatternSpace,
        good: GoodValues,
    ) -> Result<Self, ndetect_sim::SimError> {
        let reach = ReachabilityMatrix::compute(netlist);

        let n = netlist.num_nodes();
        let mut cones = Vec::with_capacity(n);
        let mut affected_pos = Vec::with_capacity(n);
        for i in 0..n {
            let d = NodeId::new(i);
            let cone: Vec<NodeId> = netlist
                .topo_order()
                .iter()
                .copied()
                .filter(|&g| netlist.node(g).kind() != GateKind::Input && reach.reaches(d, g))
                .collect();
            let pos: Vec<(usize, NodeId)> = netlist
                .outputs()
                .iter()
                .enumerate()
                .filter(|&(_, &po)| po == d || reach.reaches(d, po))
                .map(|(slot, &po)| (slot, po))
                .collect();
            cones.push(cone);
            affected_pos.push(pos);
        }

        Ok(FaultSimulator {
            space,
            good,
            reach,
            cones,
            affected_pos,
        })
    }

    /// The exhaustive pattern space this simulator runs over.
    #[must_use]
    pub fn space(&self) -> &PatternSpace {
        &self.space
    }

    /// The precomputed fault-free values.
    #[must_use]
    pub fn good_values(&self) -> &GoodValues {
        &self.good
    }

    /// The structural reachability matrix (shared with bridging-fault
    /// enumeration).
    #[must_use]
    pub fn reachability(&self) -> &ReachabilityMatrix {
        &self.reach
    }

    /// Re-evaluates the cone of `root` for one block. `fv` holds faulty
    /// words (valid only where `in_cone`); operands outside the cone come
    /// from the good values. `fv[root]` must be set by the caller.
    fn eval_cone(
        &self,
        netlist: &Netlist,
        block: usize,
        root: NodeId,
        fv: &mut [u64],
        in_cone: &[bool],
    ) {
        let goodb = self.good.block(block);
        for &g in &self.cones[root.index()] {
            let node = netlist.node(g);
            let kind = node.kind();
            let fanins = node.fanins();
            let operand = |f: NodeId| -> u64 {
                if in_cone[f.index()] {
                    fv[f.index()]
                } else {
                    goodb[f.index()]
                }
            };
            let word = match kind {
                GateKind::And | GateKind::Nand => {
                    let acc = fanins.iter().fold(u64::MAX, |a, &f| a & operand(f));
                    if kind == GateKind::Nand {
                        !acc
                    } else {
                        acc
                    }
                }
                GateKind::Or | GateKind::Nor => {
                    let acc = fanins.iter().fold(0u64, |a, &f| a | operand(f));
                    if kind == GateKind::Nor {
                        !acc
                    } else {
                        acc
                    }
                }
                GateKind::Xor | GateKind::Xnor => {
                    let acc = fanins.iter().fold(0u64, |a, &f| a ^ operand(f));
                    if kind == GateKind::Xnor {
                        !acc
                    } else {
                        acc
                    }
                }
                GateKind::Buf => operand(fanins[0]),
                GateKind::Not => !operand(fanins[0]),
                GateKind::Const0 => 0,
                GateKind::Const1 => u64::MAX,
                GateKind::Input => unreachable!("inputs are never in a cone"),
            };
            fv[g.index()] = word;
        }
    }

    fn detection_word(&self, block: usize, root: NodeId, fv: &[u64]) -> u64 {
        let goodb = self.good.block(block);
        let mut det = 0u64;
        for &(_, po) in &self.affected_pos[root.index()] {
            det |= fv[po.index()] ^ goodb[po.index()];
        }
        det & self.space.block_mask(block)
    }

    /// Allocates the faulty-value buffer and the cone-membership mask for
    /// a re-simulation rooted at `root`.
    fn cone_buffers(&self, netlist: &Netlist, root: NodeId) -> (Vec<u64>, Vec<bool>) {
        let mut in_cone = vec![false; netlist.num_nodes()];
        in_cone[root.index()] = true;
        for &g in &self.cones[root.index()] {
            in_cone[g.index()] = true;
        }
        (vec![0u64; netlist.num_nodes()], in_cone)
    }

    /// Assembles per-block detection words (in block order) into a set.
    fn set_from_words(&self, words: Vec<u64>) -> VectorSet {
        let mut set = VectorSet::new(self.space.num_patterns());
        for (block, word) in words.into_iter().enumerate() {
            set.set_word(block, word);
        }
        set
    }

    /// Detection words of a stuck-at fault over a contiguous block range.
    /// Blocks are independent, so any partition of the range concatenates
    /// back to the full-range result.
    fn stuck_words(
        &self,
        netlist: &Netlist,
        fault: StuckAtFault,
        blocks: Range<usize>,
    ) -> Vec<u64> {
        let vword = stuck_word(fault.value);
        let line = netlist.lines().line(fault.line);

        match *line.kind() {
            LineKind::Stem { node } => {
                let (mut fv, in_cone) = self.cone_buffers(netlist, node);
                blocks
                    .map(|block| {
                        fv[node.index()] = vword;
                        self.eval_cone(netlist, block, node, &mut fv, &in_cone);
                        self.detection_word(block, node, &fv)
                    })
                    .collect()
            }
            LineKind::Branch { node, sink } => match sink {
                Sink::GatePin { gate, pin } => {
                    let (mut fv, in_cone) = self.cone_buffers(netlist, gate);
                    blocks
                        .map(|block| {
                            // Evaluate the sink gate with the overridden
                            // operand, then its cone; finally compare
                            // observable outputs.
                            let goodb = self.good.block(block);
                            let gnode = netlist.node(gate);
                            let mut operands: Vec<u64> =
                                gnode.fanins().iter().map(|f| goodb[f.index()]).collect();
                            operands[pin] = vword;
                            let ids: Vec<NodeId> = (0..operands.len()).map(NodeId::new).collect();
                            fv[gate.index()] = eval_gate_word(gnode.kind(), &ids, &operands);
                            self.eval_cone(netlist, block, gate, &mut fv, &in_cone);
                            self.detection_word(block, gate, &fv)
                        })
                        .collect()
                }
                Sink::OutputSlot { slot: _ } => {
                    // Only this output observation is faulty: detected where
                    // the good driver value differs from the stuck value.
                    blocks
                        .map(|block| {
                            let g = self.good.node_word(block, node);
                            (g ^ vword) & self.space.block_mask(block)
                        })
                        .collect()
                }
            },
        }
    }

    /// Detection words of a bridging fault over a contiguous block range.
    fn bridge_words(
        &self,
        netlist: &Netlist,
        fault: &BridgingFault,
        blocks: Range<usize>,
    ) -> Vec<u64> {
        let victim = netlist.lines().line(fault.victim).driver();
        let aggressor = netlist.lines().line(fault.aggressor).driver();
        let (mut fv, in_cone) = self.cone_buffers(netlist, victim);

        blocks
            .map(|block| {
                let gv = self.good.node_word(block, victim);
                let ga = self.good.node_word(block, aggressor);
                // Activation: fault-free victim == a1 and aggressor == a2.
                let cond = (if fault.victim_value { gv } else { !gv })
                    & (if fault.aggressor_value { ga } else { !ga })
                    & self.space.block_mask(block);
                if cond == 0 {
                    return 0;
                }
                // Effect: victim flips on activated vectors.
                fv[victim.index()] = gv ^ cond;
                self.eval_cone(netlist, block, victim, &mut fv, &in_cone);
                self.detection_word(block, victim, &fv)
            })
            .collect()
    }

    /// Computes `T(f)` for a stuck-at fault (stem or branch).
    ///
    /// # Panics
    ///
    /// Panics if the fault's line does not belong to `netlist`, or if
    /// `netlist` is not the netlist this simulator was built for.
    #[must_use]
    pub fn detection_set_stuck(&self, netlist: &Netlist, fault: StuckAtFault) -> VectorSet {
        self.detection_set_stuck_threaded(netlist, fault, 1)
    }

    /// Computes `T(f)` with the 64-vector pattern blocks sharded over up
    /// to `num_threads` workers. Every block is simulated independently,
    /// so the result is bit-identical to the serial computation for any
    /// thread count; worthwhile on wide pattern spaces (many blocks).
    ///
    /// # Panics
    ///
    /// Panics if the fault's line does not belong to `netlist`, or if
    /// `netlist` is not the netlist this simulator was built for.
    #[must_use]
    pub fn detection_set_stuck_threaded(
        &self,
        netlist: &Netlist,
        fault: StuckAtFault,
        num_threads: usize,
    ) -> VectorSet {
        assert_eq!(netlist.num_nodes(), self.cones.len(), "wrong netlist");
        let words = parallel::run_tiled(num_threads, self.space.num_blocks(), |blocks| {
            self.stuck_words(netlist, fault, blocks)
        });
        self.set_from_words(words)
    }

    /// Computes `T(g)` for a four-way bridging fault.
    ///
    /// # Panics
    ///
    /// Panics if the fault's lines are not stems of `netlist`, or if
    /// `netlist` is not the netlist this simulator was built for.
    #[must_use]
    pub fn detection_set_bridge(&self, netlist: &Netlist, fault: &BridgingFault) -> VectorSet {
        self.detection_set_bridge_threaded(netlist, fault, 1)
    }

    /// Computes `T(g)` with the pattern blocks sharded over up to
    /// `num_threads` workers (see
    /// [`Self::detection_set_stuck_threaded`]).
    ///
    /// # Panics
    ///
    /// Panics if the fault's lines are not stems of `netlist`, or if
    /// `netlist` is not the netlist this simulator was built for.
    #[must_use]
    pub fn detection_set_bridge_threaded(
        &self,
        netlist: &Netlist,
        fault: &BridgingFault,
        num_threads: usize,
    ) -> VectorSet {
        assert_eq!(netlist.num_nodes(), self.cones.len(), "wrong netlist");
        debug_assert!(
            netlist.lines().line(fault.victim).kind().is_stem()
                && netlist.lines().line(fault.aggressor).kind().is_stem(),
            "bridging faults live on stems"
        );
        let words = parallel::run_tiled(num_threads, self.space.num_blocks(), |blocks| {
            self.bridge_words(netlist, fault, blocks)
        });
        self.set_from_words(words)
    }
}

/// Three-valued detection check for the paper's Definition 2.
///
/// Returns `true` iff the partially specified vector `tij` **definitely**
/// detects the stuck-at fault: some primary output has definite and
/// different values in the fault-free and faulty circuits under
/// pessimistic three-valued simulation.
///
/// ```
/// use ndetect_netlist::NetlistBuilder;
/// use ndetect_sim::{PartialVector, PatternSpace};
/// use ndetect_faults::{threeval_detects_stuck, StuckAtFault};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new("and2");
/// let a = b.input("a");
/// let c = b.input("c");
/// let g = b.and("g", &[a, c])?;
/// b.output(g);
/// let n = b.build()?;
/// let space = PatternSpace::new(2)?;
/// let fault = StuckAtFault::new(n.lines().stem(g), false);
/// // 1X does not definitely detect g/0; 11 does.
/// let t_1x = PartialVector::common_bits(&space, 2, 3);
/// assert!(!threeval_detects_stuck(&n, fault, &t_1x));
/// let t_11 = PartialVector::from_vector(&space, 3);
/// assert!(threeval_detects_stuck(&n, fault, &t_11));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn threeval_detects_stuck(
    netlist: &Netlist,
    fault: StuckAtFault,
    vector: &PartialVector,
) -> bool {
    let inputs = vector.trits();
    let good = eval_trits_all(netlist, &inputs);

    let line = netlist.lines().line(fault.line);
    let fault_trit = Trit::from_bool(fault.value);

    // Faulty levelized pass with injection.
    let mut faulty = vec![Trit::X; netlist.num_nodes()];
    for (&pi, &v) in netlist.inputs().iter().zip(&inputs) {
        faulty[pi.index()] = v;
    }
    let (stem_forced, pin_override): (Option<NodeId>, Option<(NodeId, usize)>) = match *line.kind()
    {
        LineKind::Stem { node } => (Some(node), None),
        LineKind::Branch { node: _, sink } => match sink {
            Sink::GatePin { gate, pin } => (None, Some((gate, pin))),
            Sink::OutputSlot { .. } => (None, None),
        },
    };
    if let Some(node) = stem_forced {
        faulty[node.index()] = fault_trit;
    }
    let mut operands: Vec<Trit> = Vec::new();
    for &id in netlist.topo_order() {
        let node = netlist.node(id);
        if node.kind() == GateKind::Input {
            continue;
        }
        if stem_forced == Some(id) {
            continue; // value forced, no evaluation
        }
        operands.clear();
        operands.extend(node.fanins().iter().map(|f| faulty[f.index()]));
        if let Some((gate, pin)) = pin_override {
            if gate == id {
                operands[pin] = fault_trit;
            }
        }
        faulty[id.index()] = eval_gate_trit(node.kind(), &operands);
    }
    if let Some(node) = stem_forced {
        faulty[node.index()] = fault_trit;
    }

    // Observation: definite difference on some output slot.
    let po_branch_slot = match *line.kind() {
        LineKind::Branch {
            sink: Sink::OutputSlot { slot },
            ..
        } => Some(slot),
        _ => None,
    };
    for (slot, &po) in netlist.outputs().iter().enumerate() {
        let g = good[po.index()];
        let f = if po_branch_slot == Some(slot) {
            fault_trit
        } else {
            faulty[po.index()]
        };
        if let (Some(gb), Some(fb)) = (g.to_option(), f.to_option()) {
            if gb != fb {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stuck_at::all_stuck_at_faults;
    use ndetect_netlist::NetlistBuilder;

    fn figure1() -> Netlist {
        let mut b = NetlistBuilder::new("figure1");
        let i1 = b.input("1");
        let i2 = b.input("2");
        let i3 = b.input("3");
        let i4 = b.input("4");
        let g9 = b.and("9", &[i1, i2]).unwrap();
        let g10 = b.and("10", &[i2, i3]).unwrap();
        let g11 = b.or("11", &[i3, i4]).unwrap();
        b.output(g9);
        b.output(g10);
        b.output(g11);
        b.build().unwrap()
    }

    /// Oracle: detection set by brute-force scalar simulation with the
    /// fault applied through explicit line semantics.
    fn oracle_stuck(netlist: &Netlist, fault: StuckAtFault, space: &PatternSpace) -> Vec<usize> {
        let mut detected = Vec::new();
        for v in 0..space.num_patterns() {
            let bits = space.vector_bits(v);
            let good = netlist.eval_bool(&bits);
            let faulty = oracle_eval_faulty(netlist, fault, &bits);
            if good != faulty {
                detected.push(v);
            }
        }
        detected
    }

    fn oracle_eval_faulty(netlist: &Netlist, fault: StuckAtFault, bits: &[bool]) -> Vec<bool> {
        let line = netlist.lines().line(fault.line);
        let mut values = vec![false; netlist.num_nodes()];
        for (pi, &v) in netlist.inputs().iter().zip(bits) {
            values[pi.index()] = v;
        }
        let (stem_forced, pin_override) = match *line.kind() {
            LineKind::Stem { node } => (Some(node), None),
            LineKind::Branch { sink, .. } => match sink {
                Sink::GatePin { gate, pin } => (None, Some((gate, pin))),
                Sink::OutputSlot { .. } => (None, None),
            },
        };
        for &id in netlist.topo_order() {
            let node = netlist.node(id);
            if node.kind() != GateKind::Input {
                let mut ops: Vec<bool> = node.fanins().iter().map(|f| values[f.index()]).collect();
                if let Some((g, p)) = pin_override {
                    if g == id {
                        ops[p] = fault.value;
                    }
                }
                values[id.index()] = node.kind().eval_bool(&ops);
            }
            if stem_forced == Some(id) {
                values[id.index()] = fault.value;
            }
        }
        if let Some(node) = stem_forced {
            values[node.index()] = fault.value;
        }
        let po_branch_slot = match *line.kind() {
            LineKind::Branch {
                sink: Sink::OutputSlot { slot },
                ..
            } => Some(slot),
            _ => None,
        };
        netlist
            .outputs()
            .iter()
            .enumerate()
            .map(|(slot, &po)| {
                if po_branch_slot == Some(slot) {
                    fault.value
                } else {
                    values[po.index()]
                }
            })
            .collect()
    }

    #[test]
    fn stuck_detection_sets_match_oracle_on_figure1() {
        let n = figure1();
        let sim = FaultSimulator::new(&n).unwrap();
        for fault in all_stuck_at_faults(&n) {
            let fast = sim.detection_set_stuck(&n, fault).to_vec();
            let slow = oracle_stuck(&n, fault, sim.space());
            assert_eq!(fast, slow, "fault {}", fault.name(&n));
        }
    }

    #[test]
    fn paper_table1_detection_sets() {
        let n = figure1();
        let sim = FaultSimulator::new(&n).unwrap();
        let by_paper = |paper_line: usize, v: bool| -> Vec<usize> {
            let line = ndetect_netlist::LineId::new(paper_line - 1);
            sim.detection_set_stuck(&n, StuckAtFault::new(line, v))
                .to_vec()
        };
        assert_eq!(by_paper(1, true), vec![4, 5, 6, 7]); // f0 = 1/1
        assert_eq!(by_paper(2, false), vec![6, 7, 12, 13, 14, 15]); // f1 = 2/0
        assert_eq!(by_paper(3, false), vec![2, 6, 7, 10, 14, 15]); // f3 = 3/0
        assert_eq!(by_paper(8, false), vec![2, 6, 10, 14]); // f9 = 8/0
        assert_eq!(by_paper(9, true), (0..12).collect::<Vec<_>>()); // f11 = 9/1
        assert_eq!(by_paper(10, false), vec![6, 7, 14, 15]); // f12 = 10/0
        assert_eq!(
            by_paper(11, false),
            vec![1, 2, 3, 5, 6, 7, 9, 10, 11, 13, 14, 15]
        ); // f14 = 11/0
    }

    #[test]
    fn paper_bridging_detection_sets() {
        let n = figure1();
        let sim = FaultSimulator::new(&n).unwrap();
        let stem = |name: &str| n.lines().stem(n.node_by_name(name).unwrap());
        // g0 = (9,0,10,1): T = {6,7}.
        let g0 = BridgingFault::new(stem("9"), false, stem("10"), true);
        assert_eq!(sim.detection_set_bridge(&n, &g0).to_vec(), vec![6, 7]);
        // g6 = (11,0,9,1): T = {12}.
        let g6 = BridgingFault::new(stem("11"), false, stem("9"), true);
        assert_eq!(sim.detection_set_bridge(&n, &g6).to_vec(), vec![12]);
    }

    #[test]
    fn bridge_oracle_cross_check() {
        // Brute-force bridging oracle on a multi-level circuit.
        let mut b = NetlistBuilder::new("ml");
        let a = b.input("a");
        let c = b.input("c");
        let d = b.input("d");
        let e = b.input("e");
        let g1 = b.and("g1", &[a, c]).unwrap();
        let g2 = b.or("g2", &[d, e]).unwrap();
        let g3 = b.nand("g3", &[g1, d]).unwrap();
        b.output(g3);
        b.output(g2);
        let n = b.build().unwrap();
        let sim = FaultSimulator::new(&n).unwrap();
        let space = sim.space();
        // Bridge between g1 (victim) and g2 (aggressor): non-feedback.
        for (a1, a2) in [(false, true), (true, false)] {
            let fault = BridgingFault::new(n.lines().stem(g1), a1, n.lines().stem(g2), a2);
            let fast = sim.detection_set_bridge(&n, &fault).to_vec();
            let mut slow = Vec::new();
            for v in 0..space.num_patterns() {
                let bits = space.vector_bits(v);
                let all = n.eval_bool_all(&bits);
                let gv = all[g1.index()];
                let ga = all[g2.index()];
                if gv != a1 || ga != a2 {
                    continue; // not activated
                }
                // Victim flips; re-evaluate downstream by brute force.
                let mut vals = all.clone();
                vals[g1.index()] = !gv;
                for &id in n.topo_order() {
                    let node = n.node(id);
                    if node.kind() == GateKind::Input || id == g1 {
                        continue;
                    }
                    let ops: Vec<bool> = node.fanins().iter().map(|f| vals[f.index()]).collect();
                    vals[id.index()] = node.kind().eval_bool(&ops);
                }
                let good_out: Vec<bool> = n.outputs().iter().map(|&po| all[po.index()]).collect();
                let bad_out: Vec<bool> = n.outputs().iter().map(|&po| vals[po.index()]).collect();
                if good_out != bad_out {
                    slow.push(v);
                }
            }
            assert_eq!(fast, slow, "bridge ({a1},{a2})");
        }
    }

    #[test]
    fn threeval_detection_is_conservative_wrt_completions() {
        // If tij detects under 3-valued logic, every completion detects
        // under 2-valued logic.
        let n = figure1();
        let sim = FaultSimulator::new(&n).unwrap();
        let space = *sim.space();
        for fault in all_stuck_at_faults(&n) {
            let t = sim.detection_set_stuck(&n, fault);
            for ti in 0..16 {
                for tj in 0..16 {
                    let tij = PartialVector::common_bits(&space, ti, tj);
                    if threeval_detects_stuck(&n, fault, &tij) {
                        for v in 0..16 {
                            if tij.is_completion(v) {
                                assert!(
                                    t.contains(v),
                                    "fault {} tij={tij} completion {v}",
                                    fault.name(&n)
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn threeval_on_full_vector_equals_two_valued_detection() {
        let n = figure1();
        let sim = FaultSimulator::new(&n).unwrap();
        let space = *sim.space();
        for fault in all_stuck_at_faults(&n) {
            let t = sim.detection_set_stuck(&n, fault);
            for v in 0..16 {
                let pv = PartialVector::from_vector(&space, v);
                assert_eq!(
                    threeval_detects_stuck(&n, fault, &pv),
                    t.contains(v),
                    "fault {} v={v}",
                    fault.name(&n)
                );
            }
        }
    }
}
