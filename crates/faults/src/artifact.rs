//! Serialization of fault universes for the content-addressed on-disk
//! artifact store (`ndetect-store`).
//!
//! The cache key is `hash(canonical netlist bytes + universe options +
//! codec version)` — see [`universe_key`]. The payload carries
//! everything expensive about a universe: the target and bridging fault
//! lists, every detection set, and the fault-free good-value blocks.
//! Cheap structural tables (equivalence collapsing, reachability, fanout
//! cones) are recomputed on load.
//!
//! Decoding is defensive: all shapes are validated against the netlist
//! the caller is building for, and any inconsistency is reported as
//! `None` — the store layer then treats the entry as a miss and the
//! universe is rebuilt from scratch.

use crate::bridging::{BridgeModel, BridgingFault};
use crate::stuck_at::StuckAtFault;
use crate::universe::UniverseOptions;
use ndetect_netlist::{LineId, Netlist};
use ndetect_sim::{GoodValues, MemoryBudget, VectorSet};
use ndetect_store::{
    ArtifactKey, ArtifactKind, CodecError, Decode, Decoder, Encode, Encoder, Fnv64, CODEC_VERSION,
};

/// Store kind tag for serialized fault universes.
pub const KIND_UNIVERSE: ArtifactKind = 1;

fn bridge_model_tag(model: BridgeModel) -> u8 {
    match model {
        BridgeModel::FourWay => 0,
        BridgeModel::WiredAnd => 1,
        BridgeModel::WiredOr => 2,
    }
}

fn bridge_model_from_tag(tag: u8) -> Option<BridgeModel> {
    match tag {
        0 => Some(BridgeModel::FourWay),
        1 => Some(BridgeModel::WiredAnd),
        2 => Some(BridgeModel::WiredOr),
        _ => None,
    }
}

/// The content-addressed key of a universe: the FNV-1a hash of the
/// canonical netlist bytes, the semantic universe options, and the codec
/// version. [`UniverseOptions::threads`] and
/// [`UniverseOptions::mem_budget`] are deliberately excluded — universes
/// are bit-identical for every worker count and memory budget, so a
/// cache populated on one machine hits on another with a different core
/// count or budget.
#[must_use]
pub fn universe_key(netlist: &Netlist, options: UniverseOptions) -> ArtifactKey {
    let mut h = Fnv64::new();
    h.update(b"ndetect.universe");
    h.update_u64(u64::from(CODEC_VERSION));
    h.update(&netlist.canonical_bytes());
    h.update(&[
        u8::from(options.collapse_targets),
        u8::from(options.include_bridges),
        bridge_model_tag(options.bridge_model),
    ]);
    ArtifactKey(h.finish())
}

/// The content-addressed key of an **explicit-target** universe (see
/// [`crate::FaultUniverse::build_explicit`]): instead of hashing the
/// netlist the universe is simulated on, the caller supplies the
/// canonical bytes of the *source* model — for time-frame-expanded
/// circuits that is the sequential netlist's canonical bytes plus a
/// fault-model tag, so derived artifacts (worst-case, generated sets)
/// are keyed by the sequential circuit, not its expansion. Like
/// [`universe_key`], threads and memory budget are excluded.
#[must_use]
pub fn explicit_universe_key(canonical: &[u8], options: UniverseOptions) -> ArtifactKey {
    let mut h = Fnv64::new();
    h.update(b"ndetect.universe.explicit");
    h.update_u64(u64::from(CODEC_VERSION));
    h.update(canonical);
    h.update(&[
        u8::from(options.collapse_targets),
        u8::from(options.include_bridges),
        bridge_model_tag(options.bridge_model),
    ]);
    ArtifactKey(h.finish())
}

impl Encode for StuckAtFault {
    fn encode(&self, e: &mut Encoder) {
        e.put_usize(self.line.index());
        e.put_bool(self.value);
    }
}

impl Decode for StuckAtFault {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let line = LineId::new(d.get_usize()?);
        let value = d.get_bool()?;
        Ok(StuckAtFault::new(line, value))
    }
}

impl Encode for BridgingFault {
    fn encode(&self, e: &mut Encoder) {
        e.put_usize(self.victim.index());
        e.put_bool(self.victim_value);
        e.put_usize(self.aggressor.index());
        e.put_bool(self.aggressor_value);
    }
}

impl Decode for BridgingFault {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let victim = LineId::new(d.get_usize()?);
        let victim_value = d.get_bool()?;
        let aggressor = LineId::new(d.get_usize()?);
        let aggressor_value = d.get_bool()?;
        Ok(BridgingFault::new(
            victim,
            victim_value,
            aggressor,
            aggressor_value,
        ))
    }
}

impl Encode for UniverseOptions {
    fn encode(&self, e: &mut Encoder) {
        e.put_bool(self.collapse_targets);
        e.put_bool(self.include_bridges);
        e.put_u8(bridge_model_tag(self.bridge_model));
        // threads and mem_budget are performance knobs, not part of the
        // result: threads encodes as the normalized value so warm loads
        // compare equal, and mem_budget stays off the wire entirely
        // (decode restores `Auto`).
        e.put_usize(0);
    }
}

impl Decode for UniverseOptions {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let collapse_targets = d.get_bool()?;
        let include_bridges = d.get_bool()?;
        let bridge_model = bridge_model_from_tag(d.get_u8()?)
            .ok_or_else(|| CodecError::new("unknown bridge model tag"))?;
        let threads = d.get_usize()?;
        Ok(UniverseOptions {
            collapse_targets,
            include_bridges,
            bridge_model,
            threads,
            mem_budget: MemoryBudget::Auto,
        })
    }
}

/// Borrowed view of a universe for the **save** path: encodes with the
/// exact wire format [`UniverseArtifact`] decodes, without cloning the
/// detection sets or the good-value table. Keep the two field orders in
/// lockstep.
pub(crate) struct UniverseArtifactRef<'a> {
    pub num_inputs: usize,
    pub num_nodes: usize,
    pub num_lines: usize,
    pub options: UniverseOptions,
    pub targets: &'a [StuckAtFault],
    pub target_sets: &'a [VectorSet],
    pub bridges: &'a [BridgingFault],
    pub bridge_sets: &'a [VectorSet],
    pub num_undetectable_bridges: usize,
    pub good: &'a GoodValues,
}

impl Encode for UniverseArtifactRef<'_> {
    fn encode(&self, e: &mut Encoder) {
        e.put_usize(self.num_inputs);
        e.put_usize(self.num_nodes);
        e.put_usize(self.num_lines);
        self.options.encode(e);
        self.targets.encode(e);
        self.target_sets.encode(e);
        self.bridges.encode(e);
        self.bridge_sets.encode(e);
        e.put_usize(self.num_undetectable_bridges);
        self.good.encode(e);
    }
}

/// The serialized body of a [`crate::FaultUniverse`]: everything that is
/// expensive to recompute, plus enough shape information to validate the
/// entry against the netlist it is being loaded for.
#[derive(Debug)]
pub(crate) struct UniverseArtifact {
    pub num_inputs: usize,
    pub num_nodes: usize,
    pub num_lines: usize,
    pub options: UniverseOptions,
    pub targets: Vec<StuckAtFault>,
    pub target_sets: Vec<VectorSet>,
    pub bridges: Vec<BridgingFault>,
    pub bridge_sets: Vec<VectorSet>,
    pub num_undetectable_bridges: usize,
    pub good: GoodValues,
}

impl Decode for UniverseArtifact {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(UniverseArtifact {
            num_inputs: d.get_usize()?,
            num_nodes: d.get_usize()?,
            num_lines: d.get_usize()?,
            options: UniverseOptions::decode(d)?,
            targets: Vec::decode(d)?,
            target_sets: Vec::decode(d)?,
            bridges: Vec::decode(d)?,
            bridge_sets: Vec::decode(d)?,
            num_undetectable_bridges: d.get_usize()?,
            good: GoodValues::decode(d)?,
        })
    }
}

impl UniverseArtifact {
    /// Checks every shape invariant against the netlist and options the
    /// caller is actually building for. `false` means the entry is stale
    /// or corrupt and must be treated as a miss.
    pub(crate) fn is_consistent_with(&self, netlist: &Netlist, options: UniverseOptions) -> bool {
        let num_patterns = 1usize << netlist.num_inputs();
        let semantic = UniverseOptions {
            threads: 0,
            mem_budget: MemoryBudget::Auto,
            ..options
        };
        let stored = UniverseOptions {
            threads: 0,
            mem_budget: MemoryBudget::Auto,
            ..self.options
        };
        self.num_inputs == netlist.num_inputs()
            && self.num_nodes == netlist.num_nodes()
            && self.num_lines == netlist.lines().len()
            && stored == semantic
            && self.targets.len() == self.target_sets.len()
            && self.bridges.len() == self.bridge_sets.len()
            && self.targets.iter().all(|f| f.line.index() < self.num_lines)
            && self
                .bridges
                .iter()
                .all(|b| b.victim.index() < self.num_lines && b.aggressor.index() < self.num_lines)
            && self
                .target_sets
                .iter()
                .chain(self.bridge_sets.iter())
                .all(|s| s.num_patterns() == num_patterns)
            && self.good.num_nodes() == netlist.num_nodes()
            && self.good.num_blocks() == num_patterns.div_ceil(64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndetect_netlist::NetlistBuilder;
    use ndetect_store::{decode_from_slice, encode_to_vec};

    fn and2() -> Netlist {
        let mut b = NetlistBuilder::new("and2");
        let a = b.input("a");
        let c = b.input("c");
        let g = b.and("g", &[a, c]).unwrap();
        b.output(g);
        b.build().unwrap()
    }

    #[test]
    fn key_depends_on_structure_and_options() {
        let n = and2();
        let defaults = UniverseOptions::default();
        let k1 = universe_key(&n, defaults);
        // Thread count does not change the key.
        let k2 = universe_key(&n, UniverseOptions::with_threads(4));
        assert_eq!(k1, k2);
        // Neither does the memory budget.
        let k_budget = universe_key(
            &n,
            UniverseOptions {
                mem_budget: MemoryBudget::Bytes(1 << 20),
                ..defaults
            },
        );
        assert_eq!(k1, k_budget);
        // Any semantic option does.
        let k3 = universe_key(
            &n,
            UniverseOptions {
                include_bridges: false,
                ..defaults
            },
        );
        assert_ne!(k1, k3);
        let k4 = universe_key(
            &n,
            UniverseOptions {
                bridge_model: BridgeModel::WiredAnd,
                ..defaults
            },
        );
        assert_ne!(k1, k4);
        // A different circuit does too.
        let mut b = NetlistBuilder::new("or2");
        let a = b.input("a");
        let c = b.input("c");
        let g = b.or("g", &[a, c]).unwrap();
        b.output(g);
        let other = b.build().unwrap();
        assert_ne!(k1, universe_key(&other, defaults));
    }

    #[test]
    fn fault_codecs_round_trip() {
        let f = StuckAtFault::new(LineId::new(7), true);
        assert_eq!(
            decode_from_slice::<StuckAtFault>(&encode_to_vec(&f)).unwrap(),
            f
        );
        let b = BridgingFault::new(LineId::new(3), false, LineId::new(9), true);
        assert_eq!(
            decode_from_slice::<BridgingFault>(&encode_to_vec(&b)).unwrap(),
            b
        );
        let o = UniverseOptions {
            collapse_targets: false,
            include_bridges: true,
            bridge_model: BridgeModel::WiredOr,
            threads: 5,
            mem_budget: MemoryBudget::Bytes(4096),
        };
        let back = decode_from_slice::<UniverseOptions>(&encode_to_vec(&o)).unwrap();
        // threads and mem_budget are normalized away by the codec.
        assert_eq!(
            back,
            UniverseOptions {
                threads: 0,
                mem_budget: MemoryBudget::Auto,
                ..o
            }
        );
    }
}
