//! Error type for fault-universe construction.

use ndetect_sim::SimError;
use std::error::Error;
use std::fmt;

/// Errors produced while building fault universes or simulating faults.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultError {
    /// The underlying exhaustive simulation could not be configured
    /// (typically: too many inputs).
    Sim(SimError),
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::Sim(e) => write!(f, "simulation setup failed: {e}"),
        }
    }
}

impl Error for FaultError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FaultError::Sim(e) => Some(e),
        }
    }
}

impl From<SimError> for FaultError {
    fn from(e: SimError) -> Self {
        FaultError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_sim_error_with_source() {
        let e = FaultError::from(SimError::TooManyInputs { got: 30, max: 24 });
        assert!(e.to_string().contains("30"));
        assert!(Error::source(&e).is_some());
    }
}
