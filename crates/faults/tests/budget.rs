//! Differential suite for the memory-bounded tiled row kernels: on
//! randomly generated netlists, the fault universe built under any
//! memory budget — including a 1-byte budget that forces single-block
//! tiles, and the tile-major multi-worker sweep — must be bit-identical
//! to the unbounded build, which itself must match the reference
//! full-cone kernel on every stuck-at and bridging detection set.

use ndetect_faults::{FaultUniverse, UniverseOptions};
use ndetect_netlist::Netlist;
use ndetect_sim::MemoryBudget;
use ndetect_testutil::arb_netlist_sized;
use proptest::prelude::*;

/// The budget sweep: a tiny budget (1 byte — clamps to one-block tiles,
/// the maximal tile count), the default, and explicitly unbounded.
const BUDGETS: [MemoryBudget; 3] = [
    MemoryBudget::Bytes(1),
    MemoryBudget::Auto,
    MemoryBudget::Unbounded,
];

/// Asserts that every budget × thread-count combination reproduces the
/// unbounded universe bit for bit, and that the unbounded universe
/// agrees with the full-cone oracle fault by fault.
fn assert_budgets_agree(netlist: &Netlist) -> Result<(), TestCaseError> {
    let reference = FaultUniverse::build(netlist).expect("fits exhaustive sim");
    let sim = reference.simulator();

    // Oracle pass: the reference universe's sets are exactly what the
    // full-cone kernel computes.
    for (i, &fault) in reference.targets().iter().enumerate() {
        prop_assert_eq!(
            reference.target_set(i).to_vec(),
            sim.detection_set_stuck_full_cone(netlist, fault).to_vec(),
            "stuck fault {} vs full-cone oracle",
            fault.name(netlist)
        );
    }
    for (j, bridge) in reference.bridges().iter().enumerate() {
        prop_assert_eq!(
            reference.bridge_set(j).to_vec(),
            sim.detection_set_bridge_full_cone(netlist, bridge).to_vec(),
            "bridge {} vs full-cone oracle",
            bridge.name(netlist)
        );
    }

    // Budget sweep: identical fault lists and identical set words.
    let num_blocks = sim.space().num_blocks();
    for budget in BUDGETS {
        for threads in [1usize, 4] {
            let universe = FaultUniverse::build_with(
                netlist,
                UniverseOptions {
                    threads,
                    mem_budget: budget,
                    ..UniverseOptions::default()
                },
            )
            .expect("fits exhaustive sim");
            if budget == MemoryBudget::Bytes(1) && num_blocks > 1 {
                prop_assert_eq!(universe.simulator().kernel_mode(), "tiled");
            }
            prop_assert_eq!(universe.targets(), reference.targets());
            prop_assert_eq!(universe.bridges(), reference.bridges());
            for (i, (got, want)) in universe
                .target_sets()
                .iter()
                .zip(reference.target_sets())
                .enumerate()
            {
                prop_assert_eq!(
                    got.words(),
                    want.words(),
                    "target {} budget {} threads {}",
                    i,
                    budget,
                    threads
                );
            }
            for (j, (got, want)) in universe
                .bridge_sets()
                .iter()
                .zip(reference.bridge_sets())
                .enumerate()
            {
                prop_assert_eq!(
                    got.words(),
                    want.words(),
                    "bridge {} budget {} threads {}",
                    j,
                    budget,
                    threads
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Small dense DAGs: single-block spaces, where every budget clamps
    /// to the full-width fast path.
    #[test]
    fn budgets_agree_on_small_netlists(netlist in arb_netlist_sized(4, 20)) {
        assert_budgets_agree(&netlist)?;
    }

    /// Wider spaces (up to 4 blocks): the 1-byte budget really tiles,
    /// so the tile-major sweep, the per-worker tile gather, and the
    /// tile-order set reassembly are all on the hook.
    #[test]
    fn budgets_agree_on_multi_block_netlists(netlist in arb_netlist_sized(8, 14)) {
        assert_budgets_agree(&netlist)?;
    }
}
