//! Property tests for the fault substrate: the cone-optimized
//! bit-parallel fault simulator against brute-force scalar oracles.

use ndetect_faults::{all_stuck_at_faults, threeval_detects_stuck, FaultSimulator, StuckAtFault};
use ndetect_netlist::{GateKind, LineKind, Netlist, NetlistBuilder, NodeId, Sink};
use ndetect_sim::PartialVector;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Local random DAG generator (kept independent from ndetect-testutil to
/// avoid a dependency cycle through the workspace dev-deps).
fn random_netlist(seed: u64, num_inputs: usize, num_gates: usize) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetlistBuilder::new(format!("r{seed}"));
    let mut nodes: Vec<NodeId> = (0..num_inputs).map(|i| b.input(format!("i{i}"))).collect();
    const KINDS: [GateKind; 8] = [
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
        GateKind::Buf,
    ];
    for g in 0..num_gates {
        let kind = KINDS[rng.gen_range(0..KINDS.len())];
        let arity = if matches!(kind, GateKind::Not | GateKind::Buf) {
            1
        } else {
            rng.gen_range(2..=3)
        };
        let fanins: Vec<NodeId> = (0..arity)
            .map(|_| nodes[rng.gen_range(0..nodes.len())])
            .collect();
        nodes.push(b.gate(kind, format!("g{g}"), &fanins).expect("valid"));
    }
    let outs = rng.gen_range(1..=2usize);
    for k in 0..outs {
        b.output(nodes[nodes.len() - 1 - k]);
    }
    b.build().expect("valid DAG")
}

/// Scalar oracle: evaluate the circuit with a stuck-at fault applied.
fn oracle_faulty_outputs(netlist: &Netlist, fault: StuckAtFault, bits: &[bool]) -> Vec<bool> {
    let line = netlist.lines().line(fault.line);
    let mut values = vec![false; netlist.num_nodes()];
    for (pi, &v) in netlist.inputs().iter().zip(bits) {
        values[pi.index()] = v;
    }
    let (stem_forced, pin_override) = match *line.kind() {
        LineKind::Stem { node } => (Some(node), None),
        LineKind::Branch { sink, .. } => match sink {
            Sink::GatePin { gate, pin } => (None, Some((gate, pin))),
            Sink::OutputSlot { .. } => (None, None),
        },
    };
    for &id in netlist.topo_order() {
        let node = netlist.node(id);
        if node.kind() != GateKind::Input {
            let mut ops: Vec<bool> = node.fanins().iter().map(|f| values[f.index()]).collect();
            if let Some((g, p)) = pin_override {
                if g == id {
                    ops[p] = fault.value;
                }
            }
            values[id.index()] = node.kind().eval_bool(&ops);
        }
        if stem_forced == Some(id) {
            values[id.index()] = fault.value;
        }
    }
    let po_branch_slot = match *line.kind() {
        LineKind::Branch {
            sink: Sink::OutputSlot { slot },
            ..
        } => Some(slot),
        _ => None,
    };
    netlist
        .outputs()
        .iter()
        .enumerate()
        .map(|(slot, &po)| {
            if po_branch_slot == Some(slot) {
                fault.value
            } else {
                values[po.index()]
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The cone-optimized bit-parallel stuck-at simulation equals the
    /// brute-force oracle for every fault and vector.
    #[test]
    fn stuck_detection_matches_oracle(seed in any::<u64>(), gates in 1usize..=16) {
        let netlist = random_netlist(seed, 4, gates);
        let sim = FaultSimulator::new(&netlist).expect("small");
        let space = *sim.space();
        for fault in all_stuck_at_faults(&netlist) {
            let fast = sim.detection_set_stuck(&netlist, fault);
            for v in 0..space.num_patterns() {
                let bits = space.vector_bits(v);
                let good = netlist.eval_bool(&bits);
                let bad = oracle_faulty_outputs(&netlist, fault, &bits);
                prop_assert_eq!(
                    fast.contains(v),
                    good != bad,
                    "fault {} vector {}", fault.name(&netlist), v
                );
            }
        }
    }

    /// Three-valued detection on a fully specified vector coincides with
    /// two-valued detection; on partial vectors it is conservative.
    #[test]
    fn threeval_detection_is_conservative(seed in any::<u64>(), gates in 1usize..=10) {
        let netlist = random_netlist(seed, 3, gates);
        let sim = FaultSimulator::new(&netlist).expect("small");
        let space = *sim.space();
        let faults = all_stuck_at_faults(&netlist);
        for fault in faults.iter().step_by(3).copied() {
            let t = sim.detection_set_stuck(&netlist, fault);
            for v in 0..space.num_patterns() {
                let pv = PartialVector::from_vector(&space, v);
                prop_assert_eq!(threeval_detects_stuck(&netlist, fault, &pv), t.contains(v));
            }
            for ti in 0..space.num_patterns() {
                for tj in (ti + 1)..space.num_patterns() {
                    let tij = PartialVector::common_bits(&space, ti, tj);
                    if threeval_detects_stuck(&netlist, fault, &tij) {
                        // Every completion must detect.
                        for v in 0..space.num_patterns() {
                            if tij.is_completion(v) {
                                prop_assert!(t.contains(v), "completion {} escapes", v);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Branch faults refine stem faults: a stem stuck-at is detected
    /// wherever the same-polarity fault on *all* its branches would be —
    /// in particular every branch-fault detection set is related to the
    /// stem's via the shared activation condition. Here we check the
    /// weaker structural invariant that holds universally: stem and
    /// branch faults on single-sink stems coincide.
    #[test]
    fn single_sink_stem_equals_its_connection(seed in any::<u64>(), gates in 1usize..=12) {
        let netlist = random_netlist(seed, 4, gates);
        let sim = FaultSimulator::new(&netlist).expect("small");
        for line in netlist.lines().lines() {
            if let LineKind::Stem { node } = *line.kind() {
                // A stem with exactly one sink has no branch lines; its
                // fault set is computed through the generic path. Sanity:
                // simulating twice is identical (determinism).
                if netlist.fanout(node) == 1 {
                    for value in [false, true] {
                        let f = StuckAtFault::new(line.id(), value);
                        let a = sim.detection_set_stuck(&netlist, f);
                        let b = sim.detection_set_stuck(&netlist, f);
                        prop_assert_eq!(a.to_vec(), b.to_vec());
                    }
                }
            }
        }
    }

    /// A stem stuck-at fault's detection set is a subset of the union of
    /// its branch faults' detection sets plus "multiple-branch" effects —
    /// universally, undetectable stems imply nothing; but equal-polarity
    /// branch faults never detect outside the stem's activation set:
    /// activation (line value differs) is shared.
    #[test]
    fn branch_faults_share_stem_activation(seed in any::<u64>(), gates in 2usize..=12) {
        let netlist = random_netlist(seed, 4, gates);
        let sim = FaultSimulator::new(&netlist).expect("small");
        let space = *sim.space();
        for line in netlist.lines().lines() {
            if let LineKind::Branch { node, .. } = *line.kind() {
                for value in [false, true] {
                    let f = StuckAtFault::new(line.id(), value);
                    let t = sim.detection_set_stuck(&netlist, f);
                    // Activation: the fault-free driver value must differ
                    // from the stuck value on every detecting vector.
                    for v in t.iter() {
                        let vals = netlist.eval_bool_all(&space.vector_bits(v));
                        prop_assert_ne!(
                            vals[node.index()], value,
                            "branch fault detected without activation at {}", v
                        );
                    }
                }
            }
        }
    }
}
