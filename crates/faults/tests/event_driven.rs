//! Differential suite for the event-driven fault-propagation kernel:
//! on randomly generated netlists, every stuck-at and bridging
//! detection set produced by the frontier-pruned kernel (serial, with a
//! shared scratch, and block-sharded over 4 workers) must be
//! bit-identical to the reference full-cone kernel — plus directed
//! regression tests that the frontier early exit never skips an
//! observable primary output.

use ndetect_faults::{
    all_stuck_at_faults, enumerate_bridges, BridgeModel, FaultSimulator, StuckAtFault,
};
use ndetect_netlist::{Netlist, NetlistBuilder};
use ndetect_testutil::arb_netlist_sized;
use proptest::prelude::*;

/// Asserts event-driven == full-cone for every fault of a netlist, at
/// 1 and 4 worker threads.
fn assert_kernels_agree(netlist: &Netlist) -> Result<(), TestCaseError> {
    let sim = FaultSimulator::new(netlist).expect("fits exhaustive sim");
    let mut scratch = sim.new_scratch();
    for fault in all_stuck_at_faults(netlist) {
        let oracle = sim.detection_set_stuck_full_cone(netlist, fault);
        let event = sim.detection_set_stuck_with(netlist, fault, &mut scratch);
        prop_assert_eq!(
            event.to_vec(),
            oracle.to_vec(),
            "stuck fault {} (serial)",
            fault.name(netlist)
        );
        let sharded = sim.detection_set_stuck_threaded(netlist, fault, 4);
        prop_assert_eq!(
            sharded.to_vec(),
            oracle.to_vec(),
            "stuck fault {} (4 workers)",
            fault.name(netlist)
        );
    }
    for bridge in enumerate_bridges(netlist, sim.reachability(), BridgeModel::FourWay) {
        let oracle = sim.detection_set_bridge_full_cone(netlist, &bridge);
        let event = sim.detection_set_bridge_with(netlist, &bridge, &mut scratch);
        prop_assert_eq!(
            event.to_vec(),
            oracle.to_vec(),
            "bridge {} (serial)",
            bridge.name(netlist)
        );
        let sharded = sim.detection_set_bridge_threaded(netlist, &bridge, 4);
        prop_assert_eq!(
            sharded.to_vec(),
            oracle.to_vec(),
            "bridge {} (4 workers)",
            bridge.name(netlist)
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Small dense DAGs: single-block spaces, heavy gate-level
    /// reconvergence.
    #[test]
    fn kernels_agree_on_small_netlists(netlist in arb_netlist_sized(4, 24)) {
        assert_kernels_agree(&netlist)?;
    }

    /// Wider spaces (up to 4 blocks): exercises the active-block-range
    /// tightening and the 4-worker block sharding with a real tile
    /// split.
    #[test]
    fn kernels_agree_on_multi_block_netlists(netlist in arb_netlist_sized(8, 16)) {
        assert_kernels_agree(&netlist)?;
    }
}

/// The fault effect dies in one branch (masked to a constant) but must
/// still be seen through the other: the early exit on dead frontier
/// rows must never swallow the live path to an observable output.
#[test]
fn early_exit_keeps_masked_and_live_paths_apart() {
    let mut b = NetlistBuilder::new("masked_branch");
    let a = b.input("a");
    let en = b.input("en");
    let x = b.and("x", &[a, en]).unwrap();
    // Branch 1: masked to constant 0 — the frontier dies here on every
    // block.
    let nen = b.not("nen", en).unwrap();
    let k0 = b.and("k0", &[en, nen]).unwrap(); // constant 0
    let masked = b.and("masked", &[x, k0]).unwrap();
    // Branch 2: a long inverter/buffer chain to a distant output — the
    // frontier must survive all the way down.
    let mut chain = x;
    for i in 0..6 {
        chain = if i % 2 == 0 {
            b.not(format!("c{i}"), chain).unwrap()
        } else {
            b.buf(format!("c{i}"), chain).unwrap()
        };
    }
    b.output(masked);
    b.output(chain);
    let n = b.build().unwrap();

    let sim = FaultSimulator::new(&n).unwrap();
    let mut scratch = sim.new_scratch();
    for fault in all_stuck_at_faults(&n) {
        let event = sim.detection_set_stuck_with(&n, fault, &mut scratch);
        let oracle = sim.detection_set_stuck_full_cone(&n, fault);
        assert_eq!(event, oracle, "fault {}", fault.name(&n));
    }
    // Sanity anchor: x stuck-at-0 is detected through the chain on the
    // vector where a = en = 1, despite the masked branch never showing
    // it.
    let x_sa0 = StuckAtFault::new(n.lines().stem(x), false);
    assert_eq!(sim.detection_set_stuck(&n, x_sa0).to_vec(), vec![3]);
}

/// Reconvergent XOR cancellation: both fanins of an XOR change
/// identically, so the XOR output stays fault-free (it must drop off
/// the frontier), while a sibling path stays observable.
#[test]
fn xor_reconvergence_cancels_without_losing_detection() {
    let mut b = NetlistBuilder::new("xor_cancel");
    let a = b.input("a");
    let c = b.input("c");
    let x = b.and("x", &[a, c]).unwrap();
    let p = b.buf("p", x).unwrap();
    let q = b.buf("q", x).unwrap();
    let r = b.xor("r", &[p, q]).unwrap(); // always 0, faulty or not
    b.output(r);
    b.output(p);
    let n = b.build().unwrap();

    let sim = FaultSimulator::new(&n).unwrap();
    let mut scratch = sim.new_scratch();
    for fault in all_stuck_at_faults(&n) {
        let event = sim.detection_set_stuck_with(&n, fault, &mut scratch);
        let oracle = sim.detection_set_stuck_full_cone(&n, fault);
        assert_eq!(event, oracle, "fault {}", fault.name(&n));
    }
    // x stuck-at-0: r never differs (cancellation) but p does on a=c=1.
    let x_sa0 = StuckAtFault::new(n.lines().stem(x), false);
    assert_eq!(sim.detection_set_stuck(&n, x_sa0).to_vec(), vec![3]);
}

/// A fault active only in the final 64-vector block: the active-range
/// tightening must not clip the detection words of untouched blocks
/// incorrectly, serial or sharded.
#[test]
fn fault_active_only_in_last_block() {
    let mut b = NetlistBuilder::new("tail_active");
    let inputs: Vec<_> = (0..8).map(|i| b.input(format!("i{i}"))).collect();
    let g = b.and("g", &inputs).unwrap(); // 1 only on vector 255 (block 3)
    b.output(g);
    let n = b.build().unwrap();

    let sim = FaultSimulator::new(&n).unwrap();
    assert_eq!(sim.space().num_blocks(), 4);
    // g stuck-at-0: activation (good = 1) exists only in the last block.
    let g_sa0 = StuckAtFault::new(n.lines().stem(g), false);
    assert_eq!(sim.detection_set_stuck(&n, g_sa0).to_vec(), vec![255]);
    for threads in [1, 2, 4] {
        assert_eq!(
            sim.detection_set_stuck_threaded(&n, g_sa0, threads)
                .to_vec(),
            vec![255],
            "threads={threads}"
        );
    }
    // g stuck-at-1: active everywhere except vector 255.
    let g_sa1 = StuckAtFault::new(n.lines().stem(g), true);
    assert_eq!(
        sim.detection_set_stuck(&n, g_sa1).to_vec(),
        (0..255).collect::<Vec<_>>()
    );
}
