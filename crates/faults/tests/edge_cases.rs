//! Edge-case integration tests for fault simulation: primary-output
//! branch faults, constant nodes, and redundant logic.

use ndetect_faults::{FaultSimulator, FaultUniverse, StuckAtFault};
use ndetect_netlist::{GateKind, LineKind, NetlistBuilder, Sink};

/// A node observed by a PO slot *and* feeding a gate has branch lines,
/// one of which targets the output slot: a fault there corrupts only
/// that observation.
#[test]
fn output_slot_branch_faults_affect_only_their_observation() {
    let mut b = NetlistBuilder::new("po_branch");
    let a = b.input("a");
    let c = b.input("c");
    let g1 = b.and("g1", &[a, c]).unwrap();
    let g2 = b.not("g2", g1).unwrap();
    b.output(g1); // g1 observed directly...
    b.output(g2); // ...and through g2.
    let n = b.build().unwrap();

    // g1 has two sinks: pin of g2 and output slot 0 -> two branch lines.
    let branches = n.lines().branches(g1);
    assert_eq!(branches.len(), 2);
    let po_branch = branches
        .iter()
        .copied()
        .find(|&l| {
            matches!(
                n.lines().line(l).kind(),
                LineKind::Branch {
                    sink: Sink::OutputSlot { .. },
                    ..
                }
            )
        })
        .expect("one branch feeds the PO slot");
    let gate_branch = branches
        .iter()
        .copied()
        .find(|&l| {
            matches!(
                n.lines().line(l).kind(),
                LineKind::Branch {
                    sink: Sink::GatePin { .. },
                    ..
                }
            )
        })
        .expect("one branch feeds g2");

    let sim = FaultSimulator::new(&n).unwrap();
    // PO-branch stuck-at-1: output 0 reads 1; detected where g1 = 0.
    let t = sim.detection_set_stuck(&n, StuckAtFault::new(po_branch, true));
    assert_eq!(t.to_vec(), vec![0, 1, 2]); // g1 = a&c = 0 on 00,01,10

    // PO-branch stuck-at-0: detected where g1 = 1.
    let t = sim.detection_set_stuck(&n, StuckAtFault::new(po_branch, false));
    assert_eq!(t.to_vec(), vec![3]);
    // Gate-branch stuck-at-0: g2 sees 0, flips to 1 where g1 = 1; the
    // direct observation of g1 is unaffected.
    let t = sim.detection_set_stuck(&n, StuckAtFault::new(gate_branch, false));
    assert_eq!(t.to_vec(), vec![3]);
    // Stem stuck-at-0 corrupts both observations: same activation set.
    let stem = n.lines().stem(g1);
    let t = sim.detection_set_stuck(&n, StuckAtFault::new(stem, false));
    assert_eq!(t.to_vec(), vec![3]);
}

/// Constant nodes: the same-polarity stuck-at is undetectable; the
/// opposite polarity is detected wherever it propagates.
#[test]
fn constant_node_faults() {
    let mut b = NetlistBuilder::new("consts");
    let a = b.input("a");
    let one = b.gate(GateKind::Const1, "one", &[]).unwrap();
    let g = b.and("g", &[a, one]).unwrap();
    b.output(g);
    let n = b.build().unwrap();
    let sim = FaultSimulator::new(&n).unwrap();
    let stem_one = n.lines().stem(one);
    // one stuck-at-1 == nominal: undetectable.
    let t = sim.detection_set_stuck(&n, StuckAtFault::new(stem_one, true));
    assert!(t.is_empty());
    // one stuck-at-0 forces g = 0: detected where a = 1.
    let t = sim.detection_set_stuck(&n, StuckAtFault::new(stem_one, false));
    assert_eq!(t.to_vec(), vec![1]);
}

/// Classic redundancy: g = (a & c) | (a & !c) computes `a`, so faults
/// inside the mux structure can be undetectable; the universe must
/// carry them with empty detection sets without breaking the analyses.
#[test]
fn redundant_logic_produces_undetectable_targets() {
    let mut b = NetlistBuilder::new("redundant");
    let a = b.input("a");
    let c = b.input("c");
    let nc = b.not("nc", c).unwrap();
    let t1 = b.and("t1", &[a, c]).unwrap();
    let t2 = b.and("t2", &[a, nc]).unwrap();
    let g = b.or("g", &[t1, t2]).unwrap();
    b.output(g);
    let n = b.build().unwrap();
    let u = FaultUniverse::build(&n).unwrap();
    let undetectable = u.target_sets().iter().filter(|t| t.is_empty()).count();
    assert!(
        undetectable > 0,
        "the redundant mux must have undetectable faults"
    );
    // The analyses still run.
    let wc = ndetect_core_smoke(&u);
    assert!(wc <= 100.0);
}

fn ndetect_core_smoke(u: &FaultUniverse) -> f64 {
    // Inline the nmin computation shape without depending on
    // ndetect-core (dependency direction): fraction of bridges with
    // some overlapping target.
    let mut bounded = 0usize;
    for t_g in u.bridge_sets() {
        if u.target_sets().iter().any(|t_f| t_f.intersects(t_g)) {
            bounded += 1;
        }
    }
    if u.bridge_sets().is_empty() {
        100.0
    } else {
        100.0 * bounded as f64 / u.bridge_sets().len() as f64
    }
}

/// Multi-output observation: a fault detected through either of two
/// outputs unions both propagation paths.
#[test]
fn detection_unions_across_outputs() {
    let mut b = NetlistBuilder::new("multi_out");
    let a = b.input("a");
    let c = b.input("c");
    let d = b.input("d");
    let g1 = b.and("g1", &[a, c]).unwrap();
    let g2 = b.or("g2", &[a, d]).unwrap();
    b.output(g1);
    b.output(g2);
    let n = b.build().unwrap();
    let sim = FaultSimulator::new(&n).unwrap();
    // a fans out to g1 and g2; the stem fault a/0 is detected via
    // g1 (needs c=1) or g2 (needs d=0), on vectors where a=1.
    let stem_a = n.lines().stem(a);
    let t = sim.detection_set_stuck(&n, StuckAtFault::new(stem_a, false));
    let expect: Vec<usize> = (0..8)
        .filter(|&v| {
            let (av, cv, dv) = (v >> 2 & 1 == 1, v >> 1 & 1 == 1, v & 1 == 1);
            av && (cv || !dv)
        })
        .collect();
    assert_eq!(t.to_vec(), expect);
}
