//! Cold-vs-warm equivalence of store-backed universe construction: a
//! warm load must be **bit-identical** to a fresh build — same faults,
//! same detection sets, same good values — and corruption of any kind
//! must degrade to a silent rebuild, never a panic or a wrong answer.

use ndetect_faults::{universe_key, FaultUniverse, UniverseOptions, KIND_UNIVERSE};
use ndetect_netlist::{Netlist, NetlistBuilder};
use ndetect_store::Store;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

fn temp_store(tag: &str) -> (Store, PathBuf) {
    let dir =
        std::env::temp_dir().join(format!("ndetect-faults-store-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    (Store::open(&dir).unwrap(), dir)
}

/// The lone artifact file in a store directory, descending into the
/// first-key-byte shard subdirectories under `objects/`.
fn sole_entry(dir: &std::path::Path) -> PathBuf {
    let mut files = Vec::new();
    for entry in std::fs::read_dir(dir.join("objects")).unwrap() {
        let path = entry.unwrap().path();
        if path.is_dir() {
            files.extend(std::fs::read_dir(&path).unwrap().map(|e| e.unwrap().path()));
        } else {
            files.push(path);
        }
    }
    assert_eq!(files.len(), 1, "expected exactly one cache entry");
    files.pop().unwrap()
}

fn figure1() -> Netlist {
    let mut b = NetlistBuilder::new("figure1");
    let i1 = b.input("1");
    let i2 = b.input("2");
    let i3 = b.input("3");
    let i4 = b.input("4");
    let g9 = b.and("9", &[i1, i2]).unwrap();
    let g10 = b.and("10", &[i2, i3]).unwrap();
    let g11 = b.or("11", &[i3, i4]).unwrap();
    b.output(g9);
    b.output(g10);
    b.output(g11);
    b.build().unwrap()
}

/// Asserts every observable piece of two universes is identical.
fn assert_universes_identical(a: &FaultUniverse, b: &FaultUniverse) {
    assert_eq!(a.targets(), b.targets());
    assert_eq!(a.bridges(), b.bridges());
    assert_eq!(a.num_undetectable_bridges(), b.num_undetectable_bridges());
    assert_eq!(a.target_sets().len(), b.target_sets().len());
    for (x, y) in a.target_sets().iter().zip(b.target_sets()) {
        assert_eq!(x, y);
    }
    for (x, y) in a.bridge_sets().iter().zip(b.bridge_sets()) {
        assert_eq!(x, y);
    }
    let (ga, gb) = (a.simulator().good_values(), b.simulator().good_values());
    assert_eq!(ga.words(), gb.words());
    assert_eq!(
        a.collapsed().representatives(),
        b.collapsed().representatives()
    );
}

#[test]
fn warm_load_is_bit_identical_to_cold_build() {
    let (store, dir) = temp_store("cold-warm");
    let n = figure1();
    let options = UniverseOptions::default();

    let cold = FaultUniverse::build_stored(&n, options, Some(&store)).unwrap();
    assert_eq!(store.session_misses(), 1);
    assert_eq!(store.session_hits(), 0);

    let warm = FaultUniverse::build_stored(&n, options, Some(&store)).unwrap();
    assert_eq!(store.session_hits(), 1);
    assert_universes_identical(&cold, &warm);

    // The warm universe still supports follow-up simulation (the
    // reconstructed simulator is fully functional).
    let f0 = warm.find_target("1", true).unwrap();
    assert_eq!(warm.target_set(f0).to_vec(), vec![4, 5, 6, 7]);
    let fresh = warm
        .simulator()
        .detection_set_stuck(&n, warm.targets()[f0])
        .to_vec();
    assert_eq!(fresh, vec![4, 5, 6, 7]);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn different_options_never_alias() {
    let (store, dir) = temp_store("options");
    let n = figure1();
    let with_bridges = UniverseOptions::default();
    let without = UniverseOptions {
        include_bridges: false,
        ..with_bridges
    };
    let a = FaultUniverse::build_stored(&n, with_bridges, Some(&store)).unwrap();
    let b = FaultUniverse::build_stored(&n, without, Some(&store)).unwrap();
    assert!(!a.bridges().is_empty());
    assert!(b.bridges().is_empty());
    // Warm loads preserve the distinction.
    let a2 = FaultUniverse::build_stored(&n, with_bridges, Some(&store)).unwrap();
    let b2 = FaultUniverse::build_stored(&n, without, Some(&store)).unwrap();
    assert_universes_identical(&a, &a2);
    assert_universes_identical(&b, &b2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn thread_count_shares_one_entry() {
    let (store, dir) = temp_store("threads");
    let n = figure1();
    let one =
        FaultUniverse::build_stored(&n, UniverseOptions::with_threads(1), Some(&store)).unwrap();
    // A different worker count must *hit* the same entry (results are
    // bit-identical for every thread count).
    let four =
        FaultUniverse::build_stored(&n, UniverseOptions::with_threads(4), Some(&store)).unwrap();
    assert_eq!(store.session_hits(), 1);
    assert_universes_identical(&one, &four);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Memory budgets are a performance knob like thread counts: every
/// budget maps to the **same** store key, a build under one budget is a
/// warm hit for every other, and the artifact bytes on disk are
/// byte-identical whether the full-width or the tiled kernel produced
/// them.
#[test]
fn memory_budget_shares_one_entry_with_identical_bytes() {
    use ndetect_sim::MemoryBudget;

    // 8 inputs -> 4 blocks, so a tiny budget really runs the tiled
    // kernel (figure1 is single-block and would clamp to full-width).
    let wide8 = || {
        let mut b = NetlistBuilder::new("wide8");
        let inputs: Vec<_> = (0..8).map(|i| b.input(format!("i{i}"))).collect();
        let a0 = b.and("a0", &inputs[0..4]).unwrap();
        let o0 = b.or("o0", &inputs[4..8]).unwrap();
        let x0 = b.xor("x0", &[a0, o0]).unwrap();
        b.output(x0);
        b.output(a0);
        b.build().unwrap()
    };
    let n = wide8();
    let unbounded = UniverseOptions::default();
    let tiny = UniverseOptions {
        mem_budget: MemoryBudget::Bytes(1),
        ..unbounded
    };
    assert_eq!(universe_key(&n, unbounded), universe_key(&n, tiny));

    let entry_bytes = |dir: &PathBuf| -> (PathBuf, Vec<u8>) {
        let path = sole_entry(dir);
        let bytes = std::fs::read(&path).unwrap();
        (path, bytes)
    };

    // Tiled cold build populates; an unbounded build is a warm hit.
    let (store, dir) = temp_store("budget-tiled");
    let tiled = FaultUniverse::build_stored(&n, tiny, Some(&store)).unwrap();
    assert_eq!(tiled.simulator().kernel_mode(), "tiled");
    let full = FaultUniverse::build_stored(&n, unbounded, Some(&store)).unwrap();
    assert_eq!(store.session_hits(), 1);
    assert_universes_identical(&tiled, &full);
    let (tiled_path, tiled_bytes) = entry_bytes(&dir);

    // A fresh store populated by the unbounded kernel holds the same
    // artifact, byte for byte, under the same content address.
    let (store2, dir2) = temp_store("budget-full");
    let reference = FaultUniverse::build_stored(&n, unbounded, Some(&store2)).unwrap();
    assert_eq!(reference.simulator().kernel_mode(), "full");
    assert_universes_identical(&reference, &tiled);
    let (full_path, full_bytes) = entry_bytes(&dir2);
    assert_eq!(tiled_path.file_name(), full_path.file_name());
    assert_eq!(tiled_bytes, full_bytes);

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}

#[test]
fn every_corruption_mode_degrades_to_a_correct_rebuild() {
    let (store, dir) = temp_store("corruption");
    let n = figure1();
    let options = UniverseOptions::default();
    let reference = FaultUniverse::build_with(&n, options).unwrap();
    let key = universe_key(&n, options);

    // Seed the cache, then corrupt the entry in several ways; each time
    // the build must silently fall back to a fresh (identical) result.
    type Corruption = fn(&[u8]) -> Vec<u8>;
    let corruptions: &[(&str, Corruption)] = &[
        ("truncated header", |b| b[..10].to_vec()),
        ("truncated payload", |b| b[..b.len() - 7].to_vec()),
        ("flipped payload byte", |b| {
            let mut v = b.to_vec();
            let mid = v.len() / 2;
            v[mid] ^= 0x01;
            v
        }),
        ("wrong codec version", |b| {
            let mut v = b.to_vec();
            v[4] = v[4].wrapping_add(1);
            v
        }),
        ("bad magic", |b| {
            let mut v = b.to_vec();
            v[0] = b'X';
            v
        }),
        ("empty file", |_| Vec::new()),
    ];

    for (label, corrupt) in corruptions {
        let _ = FaultUniverse::build_stored(&n, options, Some(&store)).unwrap();
        let path = sole_entry(&dir);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, corrupt(&bytes)).unwrap();

        assert!(
            store.load(key, KIND_UNIVERSE).is_none(),
            "{label}: corrupt entry must be a miss"
        );
        let rebuilt = FaultUniverse::build_stored(&n, options, Some(&store)).unwrap();
        assert_universes_identical(&reference, &rebuilt);
        // The rebuild repopulated the store; remove so the next round
        // starts from a fresh valid entry.
        let _ = std::fs::remove_file(sole_entry(&dir));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Local random DAG generator (mirrors the other fault test suites;
/// ndetect-testutil is not a dev-dependency here to keep the workspace
/// dev-graph acyclic).
fn random_netlist(seed: u64, num_inputs: usize, num_gates: usize) -> Netlist {
    use ndetect_netlist::{GateKind, NodeId};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetlistBuilder::new(format!("r{seed}"));
    let mut nodes: Vec<NodeId> = (0..num_inputs).map(|i| b.input(format!("i{i}"))).collect();
    const KINDS: [GateKind; 8] = [
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
        GateKind::Buf,
    ];
    for g in 0..num_gates {
        let kind = KINDS[rng.gen_range(0..KINDS.len())];
        let arity = if matches!(kind, GateKind::Not | GateKind::Buf) {
            1
        } else {
            rng.gen_range(2..=3)
        };
        let fanins: Vec<NodeId> = (0..arity)
            .map(|_| nodes[rng.gen_range(0..nodes.len())])
            .collect();
        nodes.push(b.gate(kind, format!("g{g}"), &fanins).expect("valid"));
    }
    let outs = rng.gen_range(1..=2usize);
    for k in 0..outs {
        b.output(nodes[nodes.len() - 1 - k]);
    }
    b.build().expect("valid DAG")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn cold_warm_equivalence_on_random_circuits(seed in any::<u64>(),
                                                inputs in 1usize..7,
                                                gates in 1usize..16) {
        let (store, dir) = temp_store(&format!("prop-{seed}-{inputs}-{gates}"));
        let n = random_netlist(seed, inputs, gates);
        let options = UniverseOptions::default();
        let cold = FaultUniverse::build_stored(&n, options, Some(&store)).unwrap();
        let warm = FaultUniverse::build_stored(&n, options, Some(&store)).unwrap();
        prop_assert_eq!(store.session_hits(), 1);
        assert_universes_identical(&cold, &warm);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
