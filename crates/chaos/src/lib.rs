//! `ndetect-chaos`: deterministic fault injection for the ndetect
//! workspace.
//!
//! A **failpoint** is a named site in production code where a test, a
//! CI job, or an operator can inject a failure without touching the
//! code: an I/O error, a torn write, a delay, or a panic. Sites are
//! compiled in permanently — [`failpoint!`] is a single relaxed atomic
//! load when nothing is armed, cheap enough for the store's I/O plane
//! and the serve request path — and armed at runtime from the
//! `NDETECT_FAILPOINTS` environment variable or the serve `chaos` verb.
//!
//! Triggers are **deterministic and seeded** so a failing chaos run
//! reproduces exactly: the only randomness is a hash of the site's own
//! hit counter with a caller-chosen seed. The discipline (and the
//! shape of the API) follows the `fail-rs` lineage used by TiKV: the
//! point of a failpoint is not to crash randomly in production, it is
//! to let CI *prove* that every degradation path — save errors ⇒
//! uncached compute, torn bytes ⇒ checksum miss, job panic ⇒ `err
//! internal` — actually degrades instead of corrupting or aborting.
//!
//! # Spec grammar
//!
//! A site is armed with `<trigger>:<action>` (or a bare `<action>`,
//! meaning `always`):
//!
//! ```text
//! trigger := off | always | one-shot@N | every(K) | prob(P,SEED)
//! action  := return-err | torn-write | delay(MS) | panic
//! ```
//!
//! * `one-shot@N` fires on the Nth hit of the site (1-based), once.
//! * `every(K)` fires on hits K, 2K, 3K, ...
//! * `prob(P,SEED)` fires on each hit independently with probability
//!   `P` (0..=1), decided by `hash(seed, hit_index)` — deterministic
//!   for a given seed and hit sequence.
//!
//! `NDETECT_FAILPOINTS` holds `;`-separated `site=spec` entries:
//!
//! ```text
//! NDETECT_FAILPOINTS='store.save.rename=return-err;serve.job=one-shot@3:panic'
//! ```
//!
//! # Using a site
//!
//! [`check`] performs `delay` and `panic` actions itself (so most call
//! sites need no handling for them) and hands `return-err` /
//! `torn-write` back for site-specific interpretation:
//!
//! ```
//! use ndetect_chaos::{failpoint, Injected};
//!
//! fn publish() -> std::io::Result<()> {
//!     if let Some(Injected::ReturnErr | Injected::TornWrite) = failpoint!("doc.publish") {
//!         return Err(ndetect_chaos::io_error("doc.publish"));
//!     }
//!     Ok(())
//! }
//! # assert!(publish().is_ok()); // nothing armed: no-op
//! ```

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Number of currently armed (non-`off`) sites; the [`failpoint!`]
/// fast path is one relaxed load of this cell.
static ARMED_SITES: AtomicUsize = AtomicUsize::new(0);

/// Cumulative count of injections that actually fired (all sites, all
/// actions) since process start — a cheap "did chaos do anything"
/// probe for tests and metrics.
static INJECTIONS: AtomicU64 = AtomicU64::new(0);

/// What a failpoint does when its trigger fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Action {
    /// The site reports an injected failure (an I/O error, an `Err`
    /// string — whatever failure type the site naturally produces).
    ReturnErr,
    /// Write sites truncate the bytes they were about to write and
    /// then fail, simulating a crash mid-write. Non-write sites treat
    /// this like [`Action::ReturnErr`].
    TornWrite,
    /// Sleep this many milliseconds, then continue normally (latency
    /// injection; performed inside [`check`]).
    Delay(u64),
    /// Panic with a recognizable message (performed inside [`check`]).
    Panic,
}

/// When a failpoint fires. All variants are deterministic: the only
/// state is the site's own hit counter (plus a caller-chosen seed for
/// [`Trigger::Prob`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Trigger {
    /// Never fires (registered but disarmed; keeps its hit counter).
    Off,
    /// Fires on every hit.
    Always,
    /// Fires on exactly the Nth hit (1-based), once.
    OneShot(u64),
    /// Fires on every Kth hit (hits K, 2K, ...).
    Every(u64),
    /// Fires on each hit with probability `p`, decided by
    /// `hash(seed, hit_index)` — reproducible for a given seed.
    Prob {
        /// Threshold scaled to `0..=2^32` (`p * 2^32`).
        threshold: u64,
        /// The seed mixed into the per-hit hash.
        seed: u64,
    },
}

/// The injection outcome a call site must interpret itself. `delay`
/// and `panic` never reach call sites — [`check`] performs them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Injected {
    /// Fail with the site's natural error type.
    ReturnErr,
    /// Truncate the pending write, then fail.
    TornWrite,
}

/// One armed (or registered-but-off) site.
#[derive(Clone, Debug)]
struct Site {
    trigger: Trigger,
    action: Action,
    hits: u64,
    fired: u64,
}

/// A snapshot of one site's configuration and activity ([`list`]).
#[derive(Clone, Debug, PartialEq)]
pub struct SiteStatus {
    /// The site name as passed to [`failpoint!`].
    pub name: String,
    /// The spec in canonical `trigger:action` form.
    pub spec: String,
    /// How many times the site has been evaluated while registered.
    pub hits: u64,
    /// How many of those evaluations fired the action.
    pub fired: u64,
}

fn registry() -> &'static Mutex<BTreeMap<String, Site>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Site>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Whether any site is currently armed. One relaxed atomic load — this
/// is the cost a disarmed failpoint adds to a hot path.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ARMED_SITES.load(Ordering::Relaxed) != 0
}

/// Evaluates the named failpoint site; see the module docs.
///
/// Returns `None` when nothing is armed (the common case — one relaxed
/// load), the site is unregistered, or its trigger does not fire.
/// `delay` sleeps and returns `None`; `panic` panics; `return-err` and
/// `torn-write` are handed back for the site to interpret.
///
/// # Panics
///
/// Panics (by design) when the site is armed with the `panic` action
/// and the trigger fires.
#[inline]
pub fn check(name: &str) -> Option<Injected> {
    if !enabled() {
        return None;
    }
    check_armed(name)
}

/// The slow path of [`check`], split out so the armed-path code stays
/// out of the inlined fast path.
fn check_armed(name: &str) -> Option<Injected> {
    let action = {
        let mut sites = registry().lock().expect("chaos registry");
        let site = sites.get_mut(name)?;
        site.hits += 1;
        if !fires(site.trigger, site.hits) {
            return None;
        }
        site.fired += 1;
        site.action
    };
    // The registry lock is released before sleeping or panicking.
    INJECTIONS.fetch_add(1, Ordering::Relaxed);
    match action {
        Action::ReturnErr => Some(Injected::ReturnErr),
        Action::TornWrite => Some(Injected::TornWrite),
        Action::Delay(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            None
        }
        Action::Panic => panic!("failpoint `{name}`: injected panic"),
    }
}

/// Whether `trigger` fires on the `hits`-th evaluation (1-based).
fn fires(trigger: Trigger, hits: u64) -> bool {
    match trigger {
        Trigger::Off => false,
        Trigger::Always => true,
        Trigger::OneShot(n) => hits == n,
        Trigger::Every(k) => k != 0 && hits % k == 0,
        Trigger::Prob { threshold, seed } => {
            // FNV-1a over (seed, hit index): reproducible per-hit coin.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in seed.to_le_bytes().iter().chain(&hits.to_le_bytes()) {
                h ^= u64::from(*byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            (h & 0xffff_ffff) < threshold
        }
    }
}

/// A consistent injected-failure `io::Error` for store-style sites, so
/// logs and tests can grep one marker.
#[must_use]
pub fn io_error(name: &str) -> std::io::Error {
    std::io::Error::other(format!("failpoint `{name}`: injected error"))
}

/// Evaluates the failpoint site `$name`; expands to
/// [`check`]`($name)`. The expansion is a function call whose fast
/// path is a single relaxed atomic load, so sites are free to sit on
/// hot I/O and request paths.
#[macro_export]
macro_rules! failpoint {
    ($name:expr) => {
        $crate::check($name)
    };
}

/// Parses one `<trigger>:<action>` (or bare `<action>`) spec.
///
/// # Errors
///
/// Returns a message naming the offending token.
fn parse_spec(spec: &str) -> Result<(Trigger, Action), String> {
    // The action never contains ':' so split on the first one only;
    // a bare action means `always`.
    let (trigger_str, action_str) = match spec.split_once(':') {
        Some((t, a)) => (t.trim(), a.trim()),
        None => ("always", spec.trim()),
    };
    let trigger = parse_trigger(trigger_str)?;
    let action = parse_action(action_str)?;
    Ok((trigger, action))
}

fn parse_trigger(s: &str) -> Result<Trigger, String> {
    if s == "off" {
        return Ok(Trigger::Off);
    }
    if s == "always" {
        return Ok(Trigger::Always);
    }
    if let Some(n) = s.strip_prefix("one-shot@") {
        let n: u64 = n
            .parse()
            .map_err(|_| format!("bad one-shot hit number `{n}`"))?;
        if n == 0 {
            return Err("one-shot hit numbers are 1-based".into());
        }
        return Ok(Trigger::OneShot(n));
    }
    if let Some(k) = strip_call(s, "every") {
        let k: u64 = k.parse().map_err(|_| format!("bad every() period `{k}`"))?;
        if k == 0 {
            return Err("every() period must be at least 1".into());
        }
        return Ok(Trigger::Every(k));
    }
    if let Some(args) = strip_call(s, "prob") {
        let (p, seed) = args
            .split_once(',')
            .ok_or_else(|| format!("prob wants `prob(p,seed)`, got `{s}`"))?;
        let p: f64 = p
            .trim()
            .parse()
            .map_err(|_| format!("bad probability `{p}`"))?;
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("probability {p} outside 0..=1"));
        }
        let seed: u64 = seed
            .trim()
            .parse()
            .map_err(|_| format!("bad prob seed `{seed}`"))?;
        return Ok(Trigger::Prob {
            threshold: (p * f64::from(2u32.pow(31)) * 2.0) as u64,
            seed,
        });
    }
    Err(format!(
        "unknown trigger `{s}` (expected off | always | one-shot@N | every(K) | prob(P,SEED))"
    ))
}

fn parse_action(s: &str) -> Result<Action, String> {
    match s {
        "return-err" => return Ok(Action::ReturnErr),
        "torn-write" => return Ok(Action::TornWrite),
        "panic" => return Ok(Action::Panic),
        _ => {}
    }
    if let Some(ms) = strip_call(s, "delay") {
        let ms: u64 = ms.parse().map_err(|_| format!("bad delay() ms `{ms}`"))?;
        return Ok(Action::Delay(ms));
    }
    Err(format!(
        "unknown action `{s}` (expected return-err | torn-write | delay(MS) | panic)"
    ))
}

/// `strip_call("every(4)", "every")` → `Some("4")`.
fn strip_call<'a>(s: &'a str, name: &str) -> Option<&'a str> {
    s.strip_prefix(name)?
        .strip_prefix('(')?
        .strip_suffix(')')
        .map(str::trim)
}

fn render_trigger(t: Trigger) -> String {
    match t {
        Trigger::Off => "off".into(),
        Trigger::Always => "always".into(),
        Trigger::OneShot(n) => format!("one-shot@{n}"),
        Trigger::Every(k) => format!("every({k})"),
        Trigger::Prob { threshold, seed } => {
            format!(
                "prob({:.3},{seed})",
                threshold as f64 / f64::from(2u32.pow(31)) / 2.0
            )
        }
    }
}

fn render_action(a: Action) -> String {
    match a {
        Action::ReturnErr => "return-err".into(),
        Action::TornWrite => "torn-write".into(),
        Action::Delay(ms) => format!("delay({ms})"),
        Action::Panic => "panic".into(),
    }
}

/// Recomputes the armed-site count after a registry mutation. Called
/// with the registry lock held by value of having just mutated it.
fn refresh_armed(sites: &BTreeMap<String, Site>) {
    let armed = sites.values().filter(|s| s.trigger != Trigger::Off).count();
    ARMED_SITES.store(armed, Ordering::Relaxed);
}

/// Arms (or re-arms) a site with a spec; see the module docs for the
/// grammar. Re-arming resets the site's hit and fired counters.
///
/// # Errors
///
/// Returns a message describing the malformed spec.
pub fn arm(site: &str, spec: &str) -> Result<(), String> {
    if site.is_empty() || site.contains(['=', ';', ' ']) {
        return Err(format!("bad failpoint site name `{site}`"));
    }
    let (trigger, action) = parse_spec(spec).map_err(|e| format!("failpoint `{site}`: {e}"))?;
    let mut sites = registry().lock().expect("chaos registry");
    sites.insert(
        site.to_string(),
        Site {
            trigger,
            action,
            hits: 0,
            fired: 0,
        },
    );
    refresh_armed(&sites);
    Ok(())
}

/// Removes one site entirely.
pub fn disarm(site: &str) {
    let mut sites = registry().lock().expect("chaos registry");
    sites.remove(site);
    refresh_armed(&sites);
}

/// Removes every site — the state a process starts in.
pub fn disarm_all() {
    let mut sites = registry().lock().expect("chaos registry");
    sites.clear();
    refresh_armed(&sites);
}

/// Applies a `;`-separated `site=spec` configuration string
/// (the `NDETECT_FAILPOINTS` format). Empty segments are ignored.
///
/// # Errors
///
/// Returns a message naming the first malformed entry; earlier valid
/// entries stay armed.
pub fn apply_config(config: &str) -> Result<(), String> {
    for entry in config.split(';') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (site, spec) = entry
            .split_once('=')
            .ok_or_else(|| format!("failpoint entry `{entry}` is not site=spec"))?;
        arm(site.trim(), spec)?;
    }
    Ok(())
}

/// Arms sites from the `NDETECT_FAILPOINTS` environment variable (a
/// no-op when unset or empty).
///
/// # Errors
///
/// Returns the [`apply_config`] error for a malformed variable — a
/// typo in a chaos run should fail loudly, not silently test nothing.
pub fn init_from_env() -> Result<(), String> {
    match std::env::var("NDETECT_FAILPOINTS") {
        Ok(config) if !config.trim().is_empty() => apply_config(&config),
        _ => Ok(()),
    }
}

/// Snapshot of every registered site, sorted by name.
#[must_use]
pub fn list() -> Vec<SiteStatus> {
    let sites = registry().lock().expect("chaos registry");
    sites
        .iter()
        .map(|(name, site)| SiteStatus {
            name: name.clone(),
            spec: format!(
                "{}:{}",
                render_trigger(site.trigger),
                render_action(site.action)
            ),
            hits: site.hits,
            fired: site.fired,
        })
        .collect()
}

/// Cumulative injections fired process-wide since start (all sites).
#[must_use]
pub fn injections() -> u64 {
    INJECTIONS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global, so tests serialize on one lock
    /// and clean up after themselves.
    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        let guard = LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        disarm_all();
        guard
    }

    #[test]
    fn disarmed_sites_are_silent_and_enabled_is_false() {
        let _x = exclusive();
        assert!(!enabled());
        assert_eq!(failpoint!("nothing.armed"), None);
        // Arming one site does not wake a different site.
        arm("tests.a", "return-err").unwrap();
        assert!(enabled());
        assert_eq!(failpoint!("tests.unrelated"), None);
        disarm_all();
        assert!(!enabled());
    }

    #[test]
    fn always_and_off_triggers() {
        let _x = exclusive();
        arm("tests.always", "always:return-err").unwrap();
        assert_eq!(failpoint!("tests.always"), Some(Injected::ReturnErr));
        assert_eq!(failpoint!("tests.always"), Some(Injected::ReturnErr));
        arm("tests.always", "off:return-err").unwrap();
        assert_eq!(failpoint!("tests.always"), None);
        // With no armed site left, the fast path short-circuits before
        // the registry is even consulted — off sites cost nothing and
        // count nothing.
        let status = list();
        assert_eq!(status.len(), 1);
        assert_eq!(status[0].hits, 0, "re-arm resets; fast path skips off");
        disarm_all();
    }

    #[test]
    fn one_shot_fires_exactly_once_on_the_nth_hit() {
        let _x = exclusive();
        arm("tests.oneshot", "one-shot@3:torn-write").unwrap();
        assert_eq!(failpoint!("tests.oneshot"), None);
        assert_eq!(failpoint!("tests.oneshot"), None);
        assert_eq!(failpoint!("tests.oneshot"), Some(Injected::TornWrite));
        assert_eq!(failpoint!("tests.oneshot"), None);
        assert_eq!(failpoint!("tests.oneshot"), None);
        let status = list();
        assert_eq!((status[0].hits, status[0].fired), (5, 1));
        disarm_all();
    }

    #[test]
    fn every_k_fires_periodically() {
        let _x = exclusive();
        arm("tests.every", "every(3):return-err").unwrap();
        let fired: Vec<bool> = (0..9)
            .map(|_| failpoint!("tests.every").is_some())
            .collect();
        assert_eq!(
            fired,
            vec![false, false, true, false, false, true, false, false, true]
        );
        disarm_all();
    }

    #[test]
    fn prob_is_deterministic_for_a_seed_and_roughly_calibrated() {
        let _x = exclusive();
        let run = |seed: u64| -> Vec<bool> {
            arm("tests.prob", &format!("prob(0.5,{seed}):return-err")).unwrap();
            (0..64)
                .map(|_| failpoint!("tests.prob").is_some())
                .collect()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "same seed, same hit sequence, same coin flips");
        let c = run(43);
        assert_ne!(a, c, "different seed flips differently");
        let hits = a.iter().filter(|&&f| f).count();
        assert!((8..=56).contains(&hits), "p=0.5 over 64 hits, got {hits}");
        // Probability bounds are enforced at parse time.
        assert!(arm("tests.prob", "prob(1.5,1):return-err").is_err());
        disarm_all();
    }

    #[test]
    fn prob_edges_never_and_always() {
        let _x = exclusive();
        arm("tests.p0", "prob(0,1):return-err").unwrap();
        arm("tests.p1", "prob(1,1):return-err").unwrap();
        assert!((0..32).all(|_| failpoint!("tests.p0").is_none()));
        assert!((0..32).all(|_| failpoint!("tests.p1").is_some()));
        disarm_all();
    }

    #[test]
    fn delay_sleeps_then_continues() {
        let _x = exclusive();
        arm("tests.delay", "delay(30)").unwrap();
        let started = std::time::Instant::now();
        assert_eq!(failpoint!("tests.delay"), None);
        assert!(started.elapsed() >= Duration::from_millis(25));
        disarm_all();
    }

    #[test]
    fn panic_action_panics_with_a_greppable_message() {
        let _x = exclusive();
        arm("tests.panic", "one-shot@1:panic").unwrap();
        let result = std::panic::catch_unwind(|| failpoint!("tests.panic"));
        let err = result.expect_err("must panic");
        let message = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(message.contains("failpoint `tests.panic`"), "{message}");
        // One-shot: the site is spent, later hits pass through.
        assert_eq!(failpoint!("tests.panic"), None);
        disarm_all();
    }

    #[test]
    fn config_string_round_trips_and_rejects_garbage() {
        let _x = exclusive();
        apply_config("tests.a=return-err; tests.b=every(2):delay(1) ;;tests.c=one-shot@9:panic")
            .unwrap();
        let names: Vec<String> = list().into_iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["tests.a", "tests.b", "tests.c"]);
        assert!(apply_config("no-equals-sign").is_err());
        assert!(apply_config("tests.x=frobnicate").is_err());
        assert!(apply_config("tests.x=sometimes:panic").is_err());
        assert!(apply_config("tests.x=every(0):panic").is_err());
        assert!(apply_config("tests.x=one-shot@0:panic").is_err());
        assert!(apply_config("bad name=panic").is_err());
        disarm_all();
    }

    #[test]
    fn injections_counter_is_monotone() {
        let _x = exclusive();
        let before = injections();
        arm("tests.count", "always:return-err").unwrap();
        let _ = failpoint!("tests.count");
        let _ = failpoint!("tests.count");
        assert!(injections() >= before + 2);
        disarm_all();
    }
}
