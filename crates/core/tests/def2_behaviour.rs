//! Focused tests for Definition-2 behaviour inside Procedure 1: the
//! fallback to Definition 1, set growth, and determinism under the
//! stricter counting.

use ndetect_circuits::figure1;
use ndetect_core::{construct_test_set_series, DetectionDefinition, Procedure1Config};
use ndetect_faults::FaultUniverse;
use ndetect_netlist::NetlistBuilder;

/// On a circuit where every pair of tests for some fault shares
/// detecting common bits, Definition 2 can never reach n = 2 for that
/// fault; the paper's fallback ("use Definition 1 instead") must keep
/// the sets valid n-detection sets under Definition 1.
#[test]
fn definition2_falls_back_to_definition1() {
    // g = AND(a, c): g/1 has T = {00,01,10}: tests 00,01 share "0-"
    // which detects g/1 => similar; 00,10 share "-0" which detects =>
    // similar; 01,10 share "--" which does NOT detect => different.
    // So Definition 2 can count at most 2 detections; n = 3 must fall
    // back to Definition 1 and still include all three tests.
    let mut b = NetlistBuilder::new("and2");
    let a = b.input("a");
    let c = b.input("c");
    let g = b.and("g", &[a, c]).unwrap();
    b.output(g);
    let n = b.build().unwrap();
    let u = FaultUniverse::build(&n).unwrap();

    let config = Procedure1Config {
        nmax: 3,
        num_test_sets: 16,
        definition: DetectionDefinition::SufficientlyDifferent,
        ..Default::default()
    };
    let series = construct_test_set_series(&u, &config).unwrap();
    for k in 0..16 {
        // The n = 3 stage: the Definition-1 requirement is still met
        // thanks to the fallback — every fault detected min(n, N(f))
        // times.
        let set = &series.sets[2][k];
        for t_f in u.target_sets() {
            assert!(set.detection_count(t_f) >= 3.min(t_f.len()), "set {k}");
        }
        // g/1 has only 3 tests; all of them must be present at n = 3.
        let g1 = u.find_target("g", true).unwrap();
        assert_eq!(set.detection_count(u.target_set(g1)), 3);
    }
}

/// Definition 2 produces sets at least as large as Definition 1 for the
/// same seed on the example circuit (stricter counting needs more
/// tests), and remains deterministic.
#[test]
fn definition2_sets_are_no_smaller_and_deterministic() {
    let u = FaultUniverse::build(&figure1::netlist()).unwrap();
    let base = Procedure1Config {
        nmax: 4,
        num_test_sets: 12,
        ..Default::default()
    };
    let d1 = construct_test_set_series(&u, &base).unwrap();
    let cfg2 = Procedure1Config {
        definition: DetectionDefinition::SufficientlyDifferent,
        ..base
    };
    let d2a = construct_test_set_series(&u, &cfg2).unwrap();
    let d2b = construct_test_set_series(&u, &cfg2).unwrap();
    assert_eq!(d2a.sets, d2b.sets, "definition 2 must be deterministic");
    let avg = |s: &ndetect_core::TestSetSeries| -> f64 {
        s.sets[3].iter().map(|t| t.len() as f64).sum::<f64>() / 12.0
    };
    assert!(
        avg(&d2a) + 1e-9 >= avg(&d1),
        "def2 avg {} < def1 avg {}",
        avg(&d2a),
        avg(&d1)
    );
}

/// At n = 1 a single detection has no pair to compare, so both
/// definitions make the same choices whenever the candidate pool is the
/// whole of `T(f)`; on the example circuit with this seed the resulting
/// sets coincide exactly (a deterministic regression pin — divergence
/// would indicate a change in selection logic, not necessarily a bug).
#[test]
fn definitions_coincide_at_n_equals_one() {
    let u = FaultUniverse::build(&figure1::netlist()).unwrap();
    let base = Procedure1Config {
        nmax: 1,
        num_test_sets: 8,
        ..Default::default()
    };
    let d1 = construct_test_set_series(&u, &base).unwrap();
    let d2 = construct_test_set_series(
        &u,
        &Procedure1Config {
            definition: DetectionDefinition::SufficientlyDifferent,
            ..base
        },
    )
    .unwrap();
    assert_eq!(d1.sets[0], d2.sets[0]);
}
