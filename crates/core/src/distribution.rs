//! Distribution of `nmin` values (the paper's Figure 2).

use crate::worst_case::WorstCaseAnalysis;
use std::collections::BTreeMap;
use std::fmt;

/// The distribution of finite `nmin(g)` values at or above a floor — the
/// content of the paper's Figure 2 (which plots `#faults` against
/// `nmin` for `nmin ≥ 100` on circuit `dvram`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NminDistribution {
    floor: u32,
    counts: BTreeMap<u32, usize>,
    num_unbounded: usize,
}

impl NminDistribution {
    /// Collects the distribution of `nmin(g) ≥ floor` (finite values
    /// only; faults with no bound at all are counted separately).
    #[must_use]
    pub fn collect(analysis: &WorstCaseAnalysis, floor: u32) -> Self {
        let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
        let mut num_unbounded = 0;
        for v in analysis.nmin_values() {
            match v {
                Some(m) if *m >= floor => *counts.entry(*m).or_insert(0) += 1,
                Some(_) => {}
                None => num_unbounded += 1,
            }
        }
        NminDistribution {
            floor,
            counts,
            num_unbounded,
        }
    }

    /// The inclusive floor used for collection.
    #[must_use]
    pub fn floor(&self) -> u32 {
        self.floor
    }

    /// `(nmin, count)` pairs in ascending `nmin` order.
    pub fn entries(&self) -> impl Iterator<Item = (u32, usize)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }

    /// Number of distinct `nmin` values at or above the floor.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Returns `true` if no fault reaches the floor.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Total faults at or above the floor (finite `nmin` only).
    #[must_use]
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// Faults with no finite `nmin` at all (`F(g) = ∅`): never
    /// guaranteed to be detected, whatever `n`.
    #[must_use]
    pub fn num_unbounded(&self) -> usize {
        self.num_unbounded
    }

    /// Renders an ASCII bar chart in the spirit of the paper's Figure 2
    /// (`nmin` on one axis, fault counts on the other), aggregating into
    /// at most `max_rows` buckets.
    #[must_use]
    pub fn render_ascii(&self, max_rows: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.counts.is_empty() {
            let _ = writeln!(out, "(no faults with nmin >= {})", self.floor);
            return out;
        }
        let entries: Vec<(u32, usize)> = self.entries().collect();
        let buckets = bucketize(&entries, max_rows.max(1));
        let max_count = buckets.iter().map(|b| b.2).max().unwrap_or(1).max(1);
        for (lo, hi, count) in buckets {
            let bar_len = (count * 50).div_ceil(max_count);
            let label = if lo == hi {
                format!("{lo:>6}")
            } else {
                format!("{lo:>6}-{hi}")
            };
            let _ = writeln!(
                out,
                "{label:>13} | {:<50} {count}",
                "#".repeat(bar_len.min(50))
            );
        }
        if self.num_unbounded > 0 {
            let _ = writeln!(
                out,
                "{:>13} | (never guaranteed)  {}",
                "inf", self.num_unbounded
            );
        }
        out
    }
}

fn bucketize(entries: &[(u32, usize)], max_rows: usize) -> Vec<(u32, u32, usize)> {
    if entries.len() <= max_rows {
        return entries.iter().map(|&(v, c)| (v, v, c)).collect();
    }
    let lo = entries.first().expect("non-empty").0;
    let hi = entries.last().expect("non-empty").0;
    let width = (u64::from(hi) - u64::from(lo) + 1).div_ceil(max_rows as u64) as u32;
    let mut buckets: Vec<(u32, u32, usize)> = Vec::new();
    for &(v, c) in entries {
        let b_lo = lo + ((v - lo) / width) * width;
        let b_hi = b_lo + width - 1;
        match buckets.last_mut() {
            Some(last) if last.0 == b_lo => last.2 += c,
            _ => buckets.push((b_lo, b_hi, c)),
        }
    }
    buckets
}

impl fmt::Display for NminDistribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_ascii(24))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndetect_circuits::figure1;
    use ndetect_faults::FaultUniverse;

    #[test]
    fn figure1_distribution() {
        let u = FaultUniverse::build(&figure1::netlist()).unwrap();
        let wc = WorstCaseAnalysis::compute(&u);
        let all = NminDistribution::collect(&wc, 1);
        assert_eq!(all.total() + all.num_unbounded(), u.bridges().len());
        // nmin(g0)=3 and nmin(g6)=4 must appear.
        let map: std::collections::BTreeMap<u32, usize> = all.entries().collect();
        assert!(map.contains_key(&3));
        assert!(map.contains_key(&4));
        let tail = NminDistribution::collect(&wc, 100);
        assert!(tail.is_empty());
    }

    #[test]
    fn ascii_rendering_contains_bars() {
        let u = FaultUniverse::build(&figure1::netlist()).unwrap();
        let wc = WorstCaseAnalysis::compute(&u);
        let d = NminDistribution::collect(&wc, 1);
        let text = d.render_ascii(10);
        assert!(text.contains('#'));
        assert!(text.contains('|'));
    }

    #[test]
    fn bucketize_respects_max_rows() {
        let entries: Vec<(u32, usize)> = (100..200).map(|v| (v, 1)).collect();
        let buckets = bucketize(&entries, 10);
        assert!(buckets.len() <= 10);
        let total: usize = buckets.iter().map(|b| b.2).sum();
        assert_eq!(total, 100);
    }
}
