//! The worst-case analysis: `nmin(g)` for every untargeted fault.

use ndetect_faults::FaultUniverse;
use ndetect_sim::parallel;
use ndetect_store::{
    decode_from_slice, encode_to_vec, ArtifactKey, ArtifactKind, CodecError, Decode, Decoder,
    Encode, Encoder, Fnv64, Store, CODEC_VERSION,
};
use std::fmt;

/// Store kind tag for serialized worst-case (`nmin` vector) analyses.
pub const KIND_WORST_CASE: ArtifactKind = 2;

/// Result of the paper's Section-2 worst-case analysis.
///
/// For every untargeted fault `g` (bridging fault index in the
/// universe), `nmin(g)` is the smallest `n` such that **every**
/// n-detection test set for the targets `F` is guaranteed to detect `g`:
///
/// ```text
/// nmin(g, f) = N(f) − M(g, f) + 1       for every f with T(f) ∩ T(g) ≠ ∅
/// nmin(g)    = min over such f
/// ```
///
/// `nmin(g) == None` means no target fault's detections overlap `T(g)`
/// at all: no n-detection test set is ever *forced* to detect `g`
/// (conceptually `nmin = ∞`).
#[derive(Clone, Debug)]
pub struct WorstCaseAnalysis {
    nmin: Vec<Option<u32>>,
    witness: Vec<Option<usize>>,
}

impl WorstCaseAnalysis {
    /// Computes `nmin(g)` for every bridging fault in the universe, with
    /// the auto worker count (`NDETECT_THREADS`, then the machine's
    /// available parallelism).
    ///
    /// Targets are scanned in ascending `N(f)` with branch-and-bound
    /// pruning (`nmin(g,f) ≥ N(f) − N(g) + 1`), which keeps the
    /// all-pairs pass fast on large fault populations.
    #[must_use]
    pub fn compute(universe: &FaultUniverse) -> Self {
        Self::compute_with(universe, 0)
    }

    /// Computes `nmin(g)` with up to `num_threads` workers (`0` = auto).
    /// Each untargeted fault is scanned independently against the shared
    /// target sets, so the result is identical for every thread count.
    #[must_use]
    pub fn compute_with(universe: &FaultUniverse, num_threads: usize) -> Self {
        let targets = universe.target_sets();
        // Sort target indices by N(f): once N(f) - N(g) + 1 is no better
        // than the best bound found, no later target can improve it.
        let mut by_size: Vec<(usize, usize)> = targets
            .iter()
            .enumerate()
            .map(|(i, t)| (t.len(), i))
            .filter(|&(n, _)| n > 0)
            .collect();
        by_size.sort_unstable();

        let num_bridges = universe.bridges().len();
        let threads = parallel::resolve_threads(num_threads);
        let per_bridge: Vec<Option<(usize, usize)>> =
            parallel::run_tiled(threads, num_bridges, |range| {
                range
                    .map(|j| {
                        let t_g = universe.bridge_set(j);
                        let n_g = t_g.len();
                        let mut best: Option<(usize, usize)> = None; // (nmin, target idx)
                        for &(n_f, fi) in &by_size {
                            if let Some((b, _)) = best {
                                // M ≤ min(N(f), N(g)) ⇒
                                // nmin(g,f) ≥ N(f) − N(g) + 1.
                                if n_f + 1 > b + n_g {
                                    break;
                                }
                            }
                            let m = targets[fi].intersection_count(t_g);
                            if m == 0 {
                                continue;
                            }
                            let candidate = n_f - m + 1;
                            if best.is_none_or(|(b, _)| candidate < b) {
                                best = Some((candidate, fi));
                            }
                        }
                        best
                    })
                    .collect()
            });

        let mut nmin: Vec<Option<u32>> = Vec::with_capacity(num_bridges);
        let mut witness: Vec<Option<usize>> = Vec::with_capacity(num_bridges);
        for best in per_bridge {
            nmin.push(best.map(|(b, _)| u32::try_from(b).expect("nmin fits u32")));
            witness.push(best.map(|(_, fi)| fi));
        }
        WorstCaseAnalysis { nmin, witness }
    }

    /// Computes `nmin(g)` with the content-addressed on-disk store as a
    /// fast path: the `nmin` and witness vectors are keyed by the
    /// universe's own store key, so a warm run skips the all-pairs pass
    /// entirely. Misses compute normally and populate the store (best
    /// effort); corrupt or inconsistent entries degrade to
    /// recomputation.
    #[must_use]
    pub fn compute_stored(
        universe: &FaultUniverse,
        num_threads: usize,
        store: Option<&Store>,
    ) -> Self {
        let Some(store) = store else {
            return Self::compute_with(universe, num_threads);
        };
        let key = Self::store_key(universe);
        if let Some(payload) = store.load(key, KIND_WORST_CASE) {
            if let Ok(wc) = decode_from_slice::<WorstCaseAnalysis>(&payload) {
                if wc.is_consistent_with(universe) {
                    return wc;
                }
            }
        }
        let wc = Self::compute_with(universe, num_threads);
        store.save_best_effort(key, KIND_WORST_CASE, &encode_to_vec(&wc));
        wc
    }

    /// The store key of this analysis for `universe`: the universe key
    /// mixed with a worst-case salt and the codec version.
    #[must_use]
    pub fn store_key(universe: &FaultUniverse) -> ArtifactKey {
        let mut h = Fnv64::new();
        h.update(b"ndetect.worstcase");
        h.update_u64(u64::from(CODEC_VERSION));
        h.update_u64(universe.store_key().0);
        ArtifactKey(h.finish())
    }

    /// Shape validation against the universe a cached entry is being
    /// loaded for — guards against key collisions and stale entries.
    fn is_consistent_with(&self, universe: &FaultUniverse) -> bool {
        self.nmin.len() == universe.bridges().len()
            && self.witness.len() == self.nmin.len()
            && self
                .witness
                .iter()
                .flatten()
                .all(|&fi| fi < universe.targets().len())
    }

    /// `nmin(g)` for bridge index `j` (`None` = never guaranteed).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn nmin(&self, j: usize) -> Option<u32> {
        self.nmin[j]
    }

    /// All `nmin` values, indexed by bridge.
    #[must_use]
    pub fn nmin_values(&self) -> &[Option<u32>] {
        &self.nmin
    }

    /// The target fault index achieving `nmin(g)`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn witness(&self, j: usize) -> Option<usize> {
        self.witness[j]
    }

    /// Number of analysed untargeted faults.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nmin.len()
    }

    /// Returns `true` if no untargeted faults were analysed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nmin.is_empty()
    }

    /// Percentage of untargeted faults with `nmin(g) ≤ n` — a Table 2
    /// cell: the fraction *guaranteed* to be detected by any n-detection
    /// test set.
    #[must_use]
    pub fn coverage_percent(&self, n: u32) -> f64 {
        if self.nmin.is_empty() {
            return 100.0;
        }
        let covered = self
            .nmin
            .iter()
            .filter(|v| v.is_some_and(|m| m <= n))
            .count();
        100.0 * covered as f64 / self.nmin.len() as f64
    }

    /// Number of untargeted faults with `nmin(g) ≥ n` (counting
    /// `None`/∞) — a Table 3 cell: the faults for which guaranteed
    /// detection needs at least `n` detections.
    #[must_use]
    pub fn tail_count(&self, n: u32) -> usize {
        self.nmin
            .iter()
            .filter(|v| v.is_none_or(|m| m >= n))
            .count()
    }

    /// Indices of the untargeted faults with `nmin(g) ≥ n` (counting
    /// `None`/∞) — the population tracked by the paper's average-case
    /// analysis (Tables 5 and 6 use `n = 11`).
    #[must_use]
    pub fn tail_indices(&self, n: u32) -> Vec<usize> {
        self.nmin
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_none_or(|m| m >= n))
            .map(|(j, _)| j)
            .collect()
    }

    /// The largest finite `nmin`, if any fault has one.
    #[must_use]
    pub fn max_finite(&self) -> Option<u32> {
        self.nmin.iter().filter_map(|v| *v).max()
    }
}

impl Encode for WorstCaseAnalysis {
    fn encode(&self, e: &mut Encoder) {
        self.nmin.encode(e);
        self.witness.encode(e);
    }
}

impl Decode for WorstCaseAnalysis {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let nmin = Vec::<Option<u32>>::decode(d)?;
        let witness = Vec::<Option<usize>>::decode(d)?;
        if nmin.len() != witness.len() {
            return Err(CodecError::new("nmin/witness length mismatch"));
        }
        Ok(WorstCaseAnalysis { nmin, witness })
    }
}

/// `nmin(g, f)` for one specific (bridge, target) pair: `None` when the
/// detection sets do not overlap.
///
/// # Panics
///
/// Panics if either index is out of range.
#[must_use]
pub fn nmin_pair(universe: &FaultUniverse, bridge: usize, target: usize) -> Option<u32> {
    let t_f = universe.target_set(target);
    let t_g = universe.bridge_set(bridge);
    let m = t_f.intersection_count(t_g);
    if m == 0 {
        None
    } else {
        Some(u32::try_from(t_f.len() - m + 1).expect("nmin fits u32"))
    }
}

/// All targets overlapping `T(g)` with their `nmin(g, f)` values, in
/// target order — the content of the paper's Table 1.
///
/// # Panics
///
/// Panics if `bridge` is out of range.
#[must_use]
pub fn overlapping_targets(universe: &FaultUniverse, bridge: usize) -> Vec<(usize, u32)> {
    (0..universe.targets().len())
        .filter_map(|fi| nmin_pair(universe, bridge, fi).map(|v| (fi, v)))
        .collect()
}

impl fmt::Display for WorstCaseAnalysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "worst-case analysis of {} untargeted faults: {:.2}% at n=1, {:.2}% at n=10, {} need n>10",
            self.len(),
            self.coverage_percent(1),
            self.coverage_percent(10),
            self.tail_count(11)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndetect_circuits::figure1;
    use ndetect_faults::FaultUniverse;

    #[test]
    fn paper_table1_nmin_pairs() {
        let u = FaultUniverse::build(&figure1::netlist()).unwrap();
        let g0 = u.find_bridge("9", false, "10", true).unwrap();
        let pairs = overlapping_targets(&u, g0);
        // Paper Table 1: i -> nmin(g0, f_i).
        let expect: &[(usize, u32)] =
            &[(0, 3), (1, 5), (3, 5), (9, 4), (11, 11), (12, 3), (14, 11)];
        assert_eq!(pairs, expect);
    }

    #[test]
    fn paper_nmin_g0_and_g6() {
        let u = FaultUniverse::build(&figure1::netlist()).unwrap();
        let wc = WorstCaseAnalysis::compute(&u);
        let g0 = u.find_bridge("9", false, "10", true).unwrap();
        assert_eq!(wc.nmin(g0), Some(3));
        let g6 = u.find_bridge("11", false, "9", true).unwrap();
        assert_eq!(wc.nmin(g6), Some(4));
        // Witness for g0 achieves the bound.
        let w = wc.witness(g0).unwrap();
        assert_eq!(nmin_pair(&u, g0, w), Some(3));
    }

    #[test]
    fn coverage_and_tail_are_consistent() {
        let u = FaultUniverse::build(&figure1::netlist()).unwrap();
        let wc = WorstCaseAnalysis::compute(&u);
        assert_eq!(wc.len(), u.bridges().len());
        // Coverage is monotone in n.
        let mut prev = 0.0;
        for n in 1..=20 {
            let c = wc.coverage_percent(n);
            assert!(c >= prev);
            prev = c;
        }
        // tail_count(1) counts everything.
        assert_eq!(wc.tail_count(1), wc.len());
        // Every fault is either covered at max_finite or has no bound.
        let nmax = wc.max_finite().unwrap();
        let at_max = wc.coverage_percent(nmax);
        let unbounded = wc.nmin_values().iter().filter(|v| v.is_none()).count();
        let expect = 100.0 * (wc.len() - unbounded) as f64 / wc.len() as f64;
        assert!((at_max - expect).abs() < 1e-9);
    }

    #[test]
    fn pruning_matches_naive_computation() {
        let u = FaultUniverse::build(&figure1::netlist()).unwrap();
        let wc = WorstCaseAnalysis::compute(&u);
        for j in 0..u.bridges().len() {
            let naive = overlapping_targets(&u, j).into_iter().map(|(_, v)| v).min();
            assert_eq!(wc.nmin(j), naive, "bridge {j}");
        }
    }

    #[test]
    fn tail_indices_match_tail_count() {
        let u = FaultUniverse::build(&figure1::netlist()).unwrap();
        let wc = WorstCaseAnalysis::compute(&u);
        for n in [1, 2, 3, 5, 11] {
            assert_eq!(wc.tail_indices(n).len(), wc.tail_count(n));
        }
    }
}
