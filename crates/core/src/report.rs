//! Row structures and plain-text rendering for the paper's tables.
//!
//! Each function mirrors one table of the paper and produces the same
//! rows/columns (with the paper's blank-suppression conventions), so the
//! benchmark binaries can print output directly comparable to the
//! published tables.

use crate::average_case::DetectionProbabilities;
use crate::worst_case::{overlapping_targets, WorstCaseAnalysis};
use ndetect_faults::FaultUniverse;
use std::fmt::Write as _;

/// Thresholds of the paper's Table 2 columns (`nmin(gj) ≤ n`).
pub const TABLE2_THRESHOLDS: [u32; 6] = [1, 2, 3, 4, 5, 10];

/// Thresholds of the paper's Table 3 columns (`nmin(gj) ≥ n`).
pub const TABLE3_THRESHOLDS: [u32; 3] = [100, 20, 11];

/// One row of Table 2: worst-case coverage percentages for small `n`.
#[derive(Clone, Debug, PartialEq)]
pub struct Table2Row {
    /// Circuit name.
    pub circuit: String,
    /// Number of untargeted faults `|G|`.
    pub num_faults: usize,
    /// `% of G with nmin ≤ n` for each entry of
    /// [`TABLE2_THRESHOLDS`]; `None` where the paper leaves the cell
    /// blank (an earlier column already reached 100%).
    pub coverage: Vec<Option<f64>>,
}

/// Builds a Table 2 row from a worst-case analysis.
#[must_use]
pub fn table2_row(circuit: &str, analysis: &WorstCaseAnalysis) -> Table2Row {
    let mut coverage = Vec::with_capacity(TABLE2_THRESHOLDS.len());
    let mut done = false;
    for &n in &TABLE2_THRESHOLDS {
        if done {
            coverage.push(None);
            continue;
        }
        let pct = analysis.coverage_percent(n);
        coverage.push(Some(pct));
        if pct >= 100.0 - 1e-9 {
            done = true;
        }
    }
    Table2Row {
        circuit: circuit.to_string(),
        num_faults: analysis.len(),
        coverage,
    }
}

/// One row of Table 3: worst-case tail counts for large `n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table3Row {
    /// Circuit name.
    pub circuit: String,
    /// Number of untargeted faults `|G|`.
    pub num_faults: usize,
    /// `(count, percent*100 as integer-ish)` of faults with
    /// `nmin ≥ n` for each entry of [`TABLE3_THRESHOLDS`].
    pub tail: Vec<usize>,
}

/// Builds a Table 3 row.
#[must_use]
pub fn table3_row(circuit: &str, analysis: &WorstCaseAnalysis) -> Table3Row {
    Table3Row {
        circuit: circuit.to_string(),
        num_faults: analysis.len(),
        tail: TABLE3_THRESHOLDS
            .iter()
            .map(|&n| analysis.tail_count(n))
            .collect(),
    }
}

/// Renders Table 2 rows as aligned text.
#[must_use]
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>8} | {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "circuit", "faults", "n<=1", "n<=2", "n<=3", "n<=4", "n<=5", "n<=10"
    );
    for row in rows {
        let _ = write!(out, "{:<10} {:>8} |", row.circuit, row.num_faults);
        for cell in &row.coverage {
            match cell {
                Some(pct) => {
                    let _ = write!(out, " {pct:>7.2}");
                }
                None => {
                    let _ = write!(out, " {:>7}", "");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders Table 3 rows as aligned text.
#[must_use]
pub fn render_table3(rows: &[Table3Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>8} | {:>16} {:>16} {:>16}",
        "circuit", "faults", "nmin>=100", "nmin>=20", "nmin>=11"
    );
    for row in rows {
        let _ = write!(out, "{:<10} {:>8} |", row.circuit, row.num_faults);
        for &count in &row.tail {
            let pct = 100.0 * count as f64 / row.num_faults.max(1) as f64;
            let cell = format!("{count} ({pct:.2})");
            let _ = write!(out, " {cell:>16}");
        }
        let _ = writeln!(out);
    }
    out
}

/// One row of the paper's Table 1: a target fault overlapping `T(g)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table1Row {
    /// The paper's fault index `i` (position in the collapsed list).
    pub index: usize,
    /// The fault in `line/value` notation.
    pub fault: String,
    /// `T(f_i)` as vector indices.
    pub t_set: Vec<usize>,
    /// `nmin(g, f_i)`.
    pub nmin: u32,
}

/// Builds the paper's Table 1 for one untargeted fault: every target
/// with overlapping detections, its `T(f)`, and `nmin(g, f)`.
#[must_use]
pub fn table1(universe: &FaultUniverse, bridge: usize) -> Vec<Table1Row> {
    overlapping_targets(universe, bridge)
        .into_iter()
        .map(|(fi, nmin)| Table1Row {
            index: fi,
            fault: universe.targets()[fi].name(universe.netlist()),
            t_set: universe.target_set(fi).to_vec(),
            nmin,
        })
        .collect()
}

/// Renders Table 1 rows as aligned text.
#[must_use]
pub fn render_table1(rows: &[Table1Row], g_name: &str, t_g: &[usize]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "faults with test vectors that overlap with T({g_name}) = {t_g:?}"
    );
    let _ = writeln!(out, "{:>3}  {:<8} {:<42} nmin(g,f_i)", "i", "f_i", "T(f_i)");
    for row in rows {
        let ts = row
            .t_set
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(
            out,
            "{:>3}  {:<8} {:<42} {}",
            row.index, row.fault, ts, row.nmin
        );
    }
    out
}

/// One row of Table 5 (or half of a Table 6 row): the histogram of
/// detection probabilities at `n = nmax`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table5Row {
    /// Circuit name.
    pub circuit: String,
    /// Number of tracked faults (those with `nmin ≥ 11`).
    pub num_faults: usize,
    /// Counts of faults with `p ≥ 1.0, 0.9, …, 0.1, 0.0`; trailing
    /// columns after the count first reaches `num_faults` are `None`
    /// (the paper leaves them blank).
    pub counts: Vec<Option<usize>>,
}

/// Builds a Table 5 row from estimated probabilities (at stage
/// `n = probs.nmax()`).
#[must_use]
pub fn table5_row(circuit: &str, probs: &DetectionProbabilities) -> Table5Row {
    let raw = probs.histogram_row(probs.nmax());
    let total = probs.tracked().len();
    let mut counts = Vec::with_capacity(raw.len());
    let mut saturated = false;
    for c in raw {
        if saturated {
            counts.push(None);
        } else {
            counts.push(Some(c));
            if c >= total {
                saturated = true;
            }
        }
    }
    Table5Row {
        circuit: circuit.to_string(),
        num_faults: total,
        counts,
    }
}

/// Renders Table 5 rows as aligned text.
#[must_use]
pub fn render_table5(rows: &[Table5Row]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:<10} {:>7} |", "circuit", "faults");
    for i in 0..=10 {
        let _ = write!(out, " {:>5.1}", 1.0 - 0.1 * f64::from(i));
    }
    let _ = writeln!(out);
    for row in rows {
        let _ = write!(out, "{:<10} {:>7} |", row.circuit, row.num_faults);
        for cell in &row.counts {
            match cell {
                Some(c) => {
                    let _ = write!(out, " {c:>5}");
                }
                None => {
                    let _ = write!(out, " {:>5}", "");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// One circuit of Table 6: the Table-5 histogram under Definition 1 and
/// Definition 2.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table6Row {
    /// Circuit name.
    pub circuit: String,
    /// Number of tracked faults.
    pub num_faults: usize,
    /// Histogram under Definition 1.
    pub def1: Vec<Option<usize>>,
    /// Histogram under Definition 2.
    pub def2: Vec<Option<usize>>,
}

/// Builds a Table 6 row from two probability estimates (Definition 1
/// and Definition 2 on the same tracked faults).
#[must_use]
pub fn table6_row(
    circuit: &str,
    def1: &DetectionProbabilities,
    def2: &DetectionProbabilities,
) -> Table6Row {
    let r1 = table5_row(circuit, def1);
    let r2 = table5_row(circuit, def2);
    Table6Row {
        circuit: circuit.to_string(),
        num_faults: r1.num_faults,
        def1: r1.counts,
        def2: r2.counts,
    }
}

/// Renders Table 6 rows as aligned text (two lines per circuit, like
/// the paper).
#[must_use]
pub fn render_table6(rows: &[Table6Row]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:<10} {:>7} def |", "circuit", "faults");
    for i in 0..=10 {
        let _ = write!(out, " {:>5.1}", 1.0 - 0.1 * f64::from(i));
    }
    let _ = writeln!(out);
    for row in rows {
        for (def, counts) in [(1, &row.def1), (2, &row.def2)] {
            if def == 1 {
                let _ = write!(out, "{:<10} {:>7}   {def} |", row.circuit, row.num_faults);
            } else {
                let _ = write!(out, "{:<10} {:>7}   {def} |", "", "");
            }
            for cell in counts {
                match cell {
                    Some(c) => {
                        let _ = write!(out, " {c:>5}");
                    }
                    None => {
                        let _ = write!(out, " {:>5}", "");
                    }
                }
            }
            let _ = writeln!(out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::average_case::{estimate_detection_probabilities, Procedure1Config};
    use ndetect_circuits::figure1;

    fn setup() -> (FaultUniverse, WorstCaseAnalysis) {
        let u = FaultUniverse::build(&figure1::netlist()).unwrap();
        let wc = WorstCaseAnalysis::compute(&u);
        (u, wc)
    }

    #[test]
    fn table1_matches_paper_for_g0() {
        let (u, _) = setup();
        let g0 = u.find_bridge("9", false, "10", true).unwrap();
        let rows = table1(&u, g0);
        let summary: Vec<(usize, &str, u32)> = rows
            .iter()
            .map(|r| (r.index, r.fault.as_str(), r.nmin))
            .collect();
        // Fault names use our line naming; indices and nmin match the paper.
        let indices: Vec<usize> = summary.iter().map(|s| s.0).collect();
        assert_eq!(indices, vec![0, 1, 3, 9, 11, 12, 14]);
        let nmins: Vec<u32> = summary.iter().map(|s| s.2).collect();
        assert_eq!(nmins, vec![3, 5, 5, 4, 11, 3, 11]);
        let text = render_table1(&rows, "(9,0,10,1)", &u.bridge_set(g0).to_vec());
        assert!(text.contains("nmin"));
        assert!(text.contains("11"));
    }

    #[test]
    fn table2_blanks_after_full_coverage() {
        let (_, wc) = setup();
        let row = table2_row("figure1", &wc);
        // figure1 reaches 100% at some small n; later cells are blank.
        let full_at = row
            .coverage
            .iter()
            .position(|c| c.is_some_and(|p| p >= 100.0 - 1e-9));
        assert!(full_at.is_some());
        for c in &row.coverage[full_at.unwrap() + 1..] {
            assert!(c.is_none());
        }
        let text = render_table2(&[row]);
        assert!(text.contains("figure1"));
    }

    #[test]
    fn table3_counts_are_monotone_in_threshold() {
        let (_, wc) = setup();
        let row = table3_row("figure1", &wc);
        // thresholds are [100, 20, 11]: counts must be nondecreasing.
        assert!(row.tail[0] <= row.tail[1]);
        assert!(row.tail[1] <= row.tail[2]);
        let text = render_table3(&[row]);
        assert!(text.contains("nmin>=100"));
    }

    #[test]
    fn table5_and_6_render() {
        let (u, wc) = setup();
        let tracked = wc.tail_indices(4); // small circuit: use nmin >= 4
        let config = Procedure1Config {
            nmax: 3,
            num_test_sets: 50,
            ..Default::default()
        };
        let p1 = estimate_detection_probabilities(&u, &tracked, &config).unwrap();
        let p2 = estimate_detection_probabilities(
            &u,
            &tracked,
            &Procedure1Config {
                definition: crate::DetectionDefinition::SufficientlyDifferent,
                ..config
            },
        )
        .unwrap();
        let row5 = table5_row("figure1", &p1);
        assert_eq!(row5.num_faults, tracked.len());
        let text = render_table5(&[row5]);
        assert!(text.contains("figure1"));
        let row6 = table6_row("figure1", &p1, &p2);
        let text = render_table6(&[row6]);
        assert!(text.lines().count() >= 3);
    }
}

/// Renders Table 2 rows as CSV (`circuit,faults,cov1,...,cov10`; blank
/// cells stay empty).
#[must_use]
pub fn table2_csv(rows: &[Table2Row]) -> String {
    let mut out = String::from("circuit,faults,n<=1,n<=2,n<=3,n<=4,n<=5,n<=10\n");
    for row in rows {
        let _ = write!(out, "{},{}", row.circuit, row.num_faults);
        for cell in &row.coverage {
            match cell {
                Some(pct) => {
                    let _ = write!(out, ",{pct:.2}");
                }
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    out
}

/// Renders Table 3 rows as CSV.
#[must_use]
pub fn table3_csv(rows: &[Table3Row]) -> String {
    let mut out = String::from("circuit,faults,nmin>=100,nmin>=20,nmin>=11\n");
    for row in rows {
        let _ = write!(out, "{},{}", row.circuit, row.num_faults);
        for &count in &row.tail {
            let _ = write!(out, ",{count}");
        }
        out.push('\n');
    }
    out
}

/// Renders Table 5 rows as CSV.
#[must_use]
pub fn table5_csv(rows: &[Table5Row]) -> String {
    let mut out = String::from(
        "circuit,faults,p>=1.0,p>=0.9,p>=0.8,p>=0.7,p>=0.6,p>=0.5,p>=0.4,p>=0.3,p>=0.2,p>=0.1,p>=0.0\n",
    );
    for row in rows {
        let _ = write!(out, "{},{}", row.circuit, row.num_faults);
        for cell in &row.counts {
            match cell {
                Some(c) => {
                    let _ = write!(out, ",{c}");
                }
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod csv_tests {
    use super::*;
    use crate::worst_case::WorstCaseAnalysis;
    use ndetect_circuits::figure1;

    #[test]
    fn csv_outputs_are_well_formed() {
        let u = FaultUniverse::build(&figure1::netlist()).unwrap();
        let wc = WorstCaseAnalysis::compute(&u);
        let t2 = table2_csv(&[table2_row("figure1", &wc)]);
        let mut lines = t2.lines();
        let header_fields = lines.next().unwrap().split(',').count();
        for line in lines {
            assert_eq!(line.split(',').count(), header_fields, "{line}");
        }
        let t3 = table3_csv(&[table3_row("figure1", &wc)]);
        assert!(t3.starts_with("circuit,faults"));
        assert_eq!(t3.lines().count(), 2);
    }
}
