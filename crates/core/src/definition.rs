//! The two definitions of "detected n times" (the paper's Definitions 1
//! and 2).

use ndetect_faults::{threeval_detects_stuck, StuckAtFault};
use ndetect_netlist::Netlist;
use ndetect_sim::{PartialVector, PatternSpace};
use std::collections::HashMap;

/// Which counting rule Procedure 1 uses for target-fault detections.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum DetectionDefinition {
    /// **Definition 1** (standard): a fault is detected `n` times by a
    /// test set containing `n` tests that detect it.
    #[default]
    Standard,
    /// **Definition 2** (from Pomeranz & Reddy, DATE 2001): tests `ti`,
    /// `tj` count as different detections of `f` only if `tij` — the
    /// vector specified where `ti` and `tj` agree and unspecified
    /// elsewhere — does **not** detect `f` under three-valued
    /// simulation. Counting is greedy in test-insertion order.
    SufficientlyDifferent,
}

/// Memo cache for Definition-2 similarity queries.
///
/// The predicate "does the common-bits vector of `(ti, tj)` detect fault
/// `f`" is pure; Procedure 1 asks it repeatedly for the same triples
/// across the K random test sets, so a simple hash memo removes most of
/// the three-valued simulation cost.
#[derive(Debug, Default)]
pub struct Def2Cache {
    map: HashMap<u64, bool>,
    hits: u64,
    misses: u64,
}

impl Def2Cache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Def2Cache::default()
    }

    /// `(hits, misses)` counters — exposed for the efficiency ablation.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Whether the common-bits vector `tij` of `ti`,`tj` detects
    /// `fault` (memoized [`threeval_detects_stuck`]).
    pub fn tij_detects(
        &mut self,
        netlist: &Netlist,
        space: &PatternSpace,
        fault_index: usize,
        fault: StuckAtFault,
        ti: u32,
        tj: u32,
    ) -> bool {
        let (lo, hi) = if ti <= tj { (ti, tj) } else { (tj, ti) };
        let key = ((fault_index as u64) << 48) | (u64::from(lo) << 24) | u64::from(hi);
        if let Some(&v) = self.map.get(&key) {
            self.hits += 1;
            return v;
        }
        self.misses += 1;
        let tij = PartialVector::common_bits(space, lo as usize, hi as usize);
        let v = threeval_detects_stuck(netlist, fault, &tij);
        self.map.insert(key, v);
        v
    }
}

/// Whether adding `t` to a test set whose Definition-2-counted
/// detections of `fault` are `counted` would count as a **new**
/// detection: `t` must be "sufficiently different" from every counted
/// test (no common-bits vector may already detect the fault).
pub fn counts_as_new_detection(
    netlist: &Netlist,
    space: &PatternSpace,
    fault_index: usize,
    fault: StuckAtFault,
    counted: &[u32],
    t: u32,
    cache: &mut Def2Cache,
) -> bool {
    counted
        .iter()
        .all(|&s| !cache.tij_detects(netlist, space, fault_index, fault, s, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndetect_faults::FaultUniverse;
    use ndetect_netlist::NetlistBuilder;

    fn and2() -> ndetect_netlist::Netlist {
        let mut b = NetlistBuilder::new("and2");
        let a = b.input("a");
        let c = b.input("c");
        let g = b.and("g", &[a, c]).unwrap();
        b.output(g);
        b.build().unwrap()
    }

    #[test]
    fn similar_tests_do_not_count_twice() {
        // For g stuck-at-1 on AND(a,c): T = {00, 01, 10}. Tests 00 and 01
        // share "0-" which already detects the fault (a=0 forces output 0,
        // faulty 1) => NOT sufficiently different.
        let n = and2();
        let u = FaultUniverse::build(&n).unwrap();
        let f_idx = u.find_target("g", true).unwrap();
        let fault = u.targets()[f_idx];
        let mut cache = Def2Cache::new();
        assert!(cache.tij_detects(&n, u.space(), f_idx, fault, 0, 1));
        assert!(!counts_as_new_detection(
            &n,
            u.space(),
            f_idx,
            fault,
            &[0],
            1,
            &mut cache
        ));
        // Tests 01 and 10 share "--" (nothing specified): tij detects
        // nothing => they are sufficiently different.
        assert!(!cache.tij_detects(&n, u.space(), f_idx, fault, 1, 2));
        assert!(counts_as_new_detection(
            &n,
            u.space(),
            f_idx,
            fault,
            &[1],
            2,
            &mut cache
        ));
    }

    #[test]
    fn cache_is_symmetric_and_counts_hits() {
        let n = and2();
        let u = FaultUniverse::build(&n).unwrap();
        let f_idx = u.find_target("g", true).unwrap();
        let fault = u.targets()[f_idx];
        let mut cache = Def2Cache::new();
        let a = cache.tij_detects(&n, u.space(), f_idx, fault, 0, 1);
        let b = cache.tij_detects(&n, u.space(), f_idx, fault, 1, 0);
        assert_eq!(a, b);
        let (hits, misses) = cache.stats();
        assert_eq!(hits, 1);
        assert_eq!(misses, 1);
    }
}
