//! The average-case analysis: Procedure 1 and detection-probability
//! estimation.

use crate::definition::{counts_as_new_detection, Def2Cache, DetectionDefinition};
use crate::error::CoreError;
use crate::test_set::TestSet;
use ndetect_faults::FaultUniverse;
use ndetect_store::{
    decode_from_slice, encode_to_vec, ArtifactKey, ArtifactKind, CodecError, Decode, Decoder,
    Encode, Encoder, Fnv64, Store, CODEC_VERSION,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Store kind tag for serialized Procedure-1 probability estimates.
pub const KIND_PROCEDURE1: ArtifactKind = 4;

/// Configuration for Procedure 1 (random n-detection test set
/// construction) and the probability estimator built on it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Procedure1Config {
    /// Largest `n` to build up to (the paper uses 10).
    pub nmax: u32,
    /// Number of independent random test sets `K` (the paper uses 10000
    /// for Table 5 and 1000 for Table 6).
    pub num_test_sets: usize,
    /// Master seed; every test set `k` derives its own RNG stream, so
    /// results are identical regardless of thread count.
    pub seed: u64,
    /// Detection-counting rule (Definition 1 or 2).
    pub definition: DetectionDefinition,
    /// Worker threads; 0 means auto (`NDETECT_THREADS`, then the
    /// machine's available parallelism).
    pub threads: usize,
}

impl Default for Procedure1Config {
    fn default() -> Self {
        Procedure1Config {
            nmax: 10,
            num_test_sets: 1000,
            seed: 0x5EED_0001,
            definition: DetectionDefinition::Standard,
            threads: 0,
        }
    }
}

impl Procedure1Config {
    fn validate(&self) -> Result<(), CoreError> {
        if self.nmax == 0 {
            return Err(CoreError::BadConfig {
                message: "nmax must be at least 1".into(),
            });
        }
        if self.num_test_sets == 0 {
            return Err(CoreError::BadConfig {
                message: "num_test_sets must be at least 1".into(),
            });
        }
        Ok(())
    }

    fn rng_for_set(&self, k: usize) -> StdRng {
        // Distinct, well-separated stream per test set.
        let stream = (k as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0x7F4A_7C15_9E37_79B9);
        StdRng::seed_from_u64(self.seed ^ stream)
    }
}

/// Shared read-only indices for fast Procedure-1 bookkeeping.
struct TargetIndex {
    /// Per target: `T(f)` as a sorted vector (for uniform sampling).
    vectors: Vec<Vec<u32>>,
    /// Per input vector: indices of targets it detects.
    targets_of_vector: Vec<Vec<u32>>,
}

impl TargetIndex {
    fn build(universe: &FaultUniverse) -> Self {
        let num_patterns = universe.space().num_patterns();
        let mut vectors = Vec::with_capacity(universe.targets().len());
        let mut targets_of_vector: Vec<Vec<u32>> = vec![Vec::new(); num_patterns];
        for (fi, set) in universe.target_sets().iter().enumerate() {
            let vs: Vec<u32> = set.iter().map(|v| v as u32).collect();
            for &v in &vs {
                targets_of_vector[v as usize].push(fi as u32);
            }
            vectors.push(vs);
        }
        TargetIndex {
            vectors,
            targets_of_vector,
        }
    }
}

/// Per-test-set evolving state.
struct RunState {
    set: TestSet,
    def1_counts: Vec<u32>,
    /// Definition-2 greedy state (`counted[f]` = tests counted as
    /// different detections, in insertion order).
    def2_counted: Vec<Vec<u32>>,
    def2_counts: Vec<u32>,
    use_def2: bool,
}

/// Runs Procedure 1 for one test set `k`, invoking `on_add(n, t)` for
/// every test added during iteration `n` and `on_iteration(n, set)` after
/// each iteration completes.
fn run_single(
    universe: &FaultUniverse,
    index: &TargetIndex,
    config: &Procedure1Config,
    k: usize,
    cache: &mut Def2Cache,
    mut on_add: impl FnMut(u32, u32),
    mut on_iteration: impl FnMut(u32, &TestSet),
) {
    let netlist = universe.netlist();
    let space = universe.space();
    let num_targets = universe.targets().len();
    let mut rng = config.rng_for_set(k);
    let use_def2 = config.definition == DetectionDefinition::SufficientlyDifferent;

    let mut state = RunState {
        set: TestSet::new(space.num_patterns()),
        def1_counts: vec![0; num_targets],
        def2_counted: if use_def2 {
            vec![Vec::new(); num_targets]
        } else {
            Vec::new()
        },
        def2_counts: vec![0; num_targets],
        use_def2,
    };

    for n in 1..=config.nmax {
        for fi in 0..num_targets {
            let t_f = &index.vectors[fi];
            if t_f.is_empty() {
                continue; // undetectable target: never adds tests
            }
            let chosen: Option<u32> = if use_def2 {
                if state.def2_counts[fi] >= n {
                    None
                } else {
                    // Candidates not yet in the set, in random order; the
                    // first that counts as a new Definition-2 detection
                    // wins. If none counts, fall back to Definition 1.
                    let mut candidates: Vec<u32> = t_f
                        .iter()
                        .copied()
                        .filter(|&v| !state.set.contains(v as usize))
                        .collect();
                    let mut pick = None;
                    // Incremental Fisher-Yates: draw without full shuffle.
                    let len = candidates.len();
                    for i in 0..len {
                        let j = rng.gen_range(i..len);
                        candidates.swap(i, j);
                        let t = candidates[i];
                        if counts_as_new_detection(
                            netlist,
                            space,
                            fi,
                            universe.targets()[fi],
                            &state.def2_counted[fi],
                            t,
                            cache,
                        ) {
                            pick = Some(t);
                            break;
                        }
                    }
                    match pick {
                        Some(t) => Some(t),
                        None if state.def1_counts[fi] < n && !candidates.is_empty() => {
                            Some(candidates[rng.gen_range(0..candidates.len())])
                        }
                        None => None,
                    }
                }
            } else if state.def1_counts[fi] >= n {
                None
            } else {
                sample_not_in_set(t_f, &state.set, &mut rng)
            };

            if let Some(t) = chosen {
                add_test(universe, index, &mut state, t, cache);
                on_add(n, t);
            }
        }
        on_iteration(n, &state.set);
    }
}

/// Uniformly samples an element of `t_f` not yet in `set` (rejection
/// sampling with a bounded retry count, then exact fallback).
fn sample_not_in_set(t_f: &[u32], set: &TestSet, rng: &mut StdRng) -> Option<u32> {
    for _ in 0..8 {
        let v = t_f[rng.gen_range(0..t_f.len())];
        if !set.contains(v as usize) {
            return Some(v);
        }
    }
    let remaining: Vec<u32> = t_f
        .iter()
        .copied()
        .filter(|&v| !set.contains(v as usize))
        .collect();
    if remaining.is_empty() {
        None
    } else {
        Some(remaining[rng.gen_range(0..remaining.len())])
    }
}

/// Adds `t` to the evolving set, updating Definition-1 counts for every
/// target detecting `t` and the greedy Definition-2 state when enabled.
fn add_test(
    universe: &FaultUniverse,
    index: &TargetIndex,
    state: &mut RunState,
    t: u32,
    cache: &mut Def2Cache,
) {
    if !state.set.push(t as usize) {
        return;
    }
    let netlist = universe.netlist();
    let space = universe.space();
    for &f in &index.targets_of_vector[t as usize] {
        let fi = f as usize;
        state.def1_counts[fi] += 1;
        if state.use_def2
            && counts_as_new_detection(
                netlist,
                space,
                fi,
                universe.targets()[fi],
                &state.def2_counted[fi],
                t,
                cache,
            )
        {
            state.def2_counted[fi].push(t);
            state.def2_counts[fi] += 1;
        }
    }
}

/// All `K` test sets for every `n ≤ nmax` — the shape of the paper's
/// Table 4. Row `sets[n-1][k]` is test set `Tk` at the end of iteration
/// `n` (an n-detection test set under the configured definition).
#[derive(Clone, Debug)]
pub struct TestSetSeries {
    /// `sets[n-1][k]`.
    pub sets: Vec<Vec<TestSet>>,
}

/// Runs Procedure 1 and collects every intermediate test set. Intended
/// for small `K` (the paper's Table 4 uses `K = 10`); memory grows as
/// `K × nmax × |T|`.
///
/// # Errors
///
/// Returns [`CoreError::BadConfig`] for zero `nmax`/`K`.
pub fn construct_test_set_series(
    universe: &FaultUniverse,
    config: &Procedure1Config,
) -> Result<TestSetSeries, CoreError> {
    config.validate()?;
    let index = TargetIndex::build(universe);
    let mut sets: Vec<Vec<TestSet>> = vec![Vec::new(); config.nmax as usize];
    let mut cache = Def2Cache::new();
    for k in 0..config.num_test_sets {
        run_single(
            universe,
            &index,
            config,
            k,
            &mut cache,
            |_, _| {},
            |n, set| sets[(n - 1) as usize].push(set.clone()),
        );
    }
    Ok(TestSetSeries { sets })
}

/// Estimated probabilities `p(n, g) = d(n, g) / K` that an arbitrary
/// n-detection test set detects each tracked untargeted fault.
#[derive(Clone, Debug)]
pub struct DetectionProbabilities {
    nmax: u32,
    num_test_sets: usize,
    tracked: Vec<usize>,
    /// `d[n-1][pos]`: number of test sets whose n-detection stage
    /// detects tracked fault `pos`.
    d: Vec<Vec<u32>>,
}

impl DetectionProbabilities {
    /// The tracked bridge indices (positions index into these).
    #[must_use]
    pub fn tracked(&self) -> &[usize] {
        &self.tracked
    }

    /// Number of test sets `K` used for the estimate.
    #[must_use]
    pub fn num_test_sets(&self) -> usize {
        self.num_test_sets
    }

    /// Largest `n` estimated.
    #[must_use]
    pub fn nmax(&self) -> u32 {
        self.nmax
    }

    /// `p(n, g)` for the tracked fault at `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or exceeds `nmax`, or `pos` is out of range.
    #[must_use]
    pub fn probability(&self, n: u32, pos: usize) -> f64 {
        assert!(n >= 1 && n <= self.nmax);
        f64::from(self.d[(n - 1) as usize][pos]) / self.num_test_sets as f64
    }

    /// Number of tracked faults with `p(n, g) ≥ threshold` — a Table 5
    /// cell.
    #[must_use]
    pub fn count_at_least(&self, n: u32, threshold: f64) -> usize {
        (0..self.tracked.len())
            .filter(|&pos| self.probability(n, pos) >= threshold - 1e-12)
            .count()
    }

    /// The paper's Table 5 row: counts at thresholds
    /// `1, 0.9, 0.8, …, 0.1, 0`.
    #[must_use]
    pub fn histogram_row(&self, n: u32) -> Vec<usize> {
        (0..=10)
            .map(|i| self.count_at_least(n, 1.0 - 0.1 * f64::from(i)))
            .collect()
    }

    /// The lowest probability among tracked faults at stage `n`
    /// (`None` if nothing is tracked).
    #[must_use]
    pub fn min_probability(&self, n: u32) -> Option<(usize, f64)> {
        (0..self.tracked.len())
            .map(|pos| (pos, self.probability(n, pos)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Expected number of tracked faults escaping an n-detection test
    /// set: `Σ (1 − p(n,g))`.
    #[must_use]
    pub fn expected_escapes(&self, n: u32) -> f64 {
        (0..self.tracked.len())
            .map(|pos| 1.0 - self.probability(n, pos))
            .sum()
    }
}

/// Estimates `p(n, g)` for the given tracked untargeted faults by
/// building `K` random n-detection test sets with Procedure 1.
///
/// Work is distributed over threads; results are bit-for-bit identical
/// for any thread count because each test set derives its own RNG
/// stream from the master seed.
///
/// # Errors
///
/// Returns [`CoreError::BadConfig`] for zero `nmax`/`K` and
/// [`CoreError::FaultIndex`] if a tracked index is out of range.
pub fn estimate_detection_probabilities(
    universe: &FaultUniverse,
    tracked: &[usize],
    config: &Procedure1Config,
) -> Result<DetectionProbabilities, CoreError> {
    config.validate()?;
    for &j in tracked {
        if j >= universe.bridges().len() {
            return Err(CoreError::FaultIndex {
                index: j,
                len: universe.bridges().len(),
            });
        }
    }
    let index = TargetIndex::build(universe);

    // Inverted index over the tracked bridges: which tracked positions
    // does each input vector detect?
    let num_patterns = universe.space().num_patterns();
    let mut tracked_of_vector: Vec<Vec<u32>> = vec![Vec::new(); num_patterns];
    for (pos, &j) in tracked.iter().enumerate() {
        for v in universe.bridge_set(j).iter() {
            tracked_of_vector[v].push(pos as u32);
        }
    }

    let nmax = config.nmax as usize;
    let num_threads = ndetect_sim::parallel::resolve_threads(config.threads)
        .min(config.num_test_sets)
        .max(1);

    let totals: Vec<Vec<u32>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(num_threads);
        for w in 0..num_threads {
            let index = &index;
            let tracked_of_vector = &tracked_of_vector;
            let num_tracked = tracked.len();
            handles.push(scope.spawn(move || {
                let mut local: Vec<Vec<u32>> = vec![vec![0; num_tracked]; nmax];
                let mut cache = Def2Cache::new();
                let mut detected_at: Vec<u32> = vec![0; num_tracked];
                for k in (w..config.num_test_sets).step_by(num_threads) {
                    detected_at.fill(0);
                    run_single(
                        universe,
                        index,
                        config,
                        k,
                        &mut cache,
                        |n, t| {
                            for &pos in &tracked_of_vector[t as usize] {
                                let p = pos as usize;
                                if detected_at[p] == 0 {
                                    detected_at[p] = n;
                                }
                            }
                        },
                        |_, _| {},
                    );
                    for (p, &at) in detected_at.iter().enumerate() {
                        if at > 0 {
                            for n in at..=config.nmax {
                                local[(n - 1) as usize][p] += 1;
                            }
                        }
                    }
                }
                local
            }));
        }
        let mut total: Vec<Vec<u32>> = vec![vec![0; tracked.len()]; nmax];
        for h in handles {
            let local = h.join().expect("procedure-1 worker panicked");
            for (trow, lrow) in total.iter_mut().zip(local) {
                for (t, l) in trow.iter_mut().zip(lrow) {
                    *t += l;
                }
            }
        }
        total
    });

    Ok(DetectionProbabilities {
        nmax: config.nmax,
        num_test_sets: config.num_test_sets,
        tracked: tracked.to_vec(),
        d: totals,
    })
}

fn definition_tag(definition: DetectionDefinition) -> u8 {
    match definition {
        DetectionDefinition::Standard => 1,
        DetectionDefinition::SufficientlyDifferent => 2,
    }
}

/// The content-addressed store key of a Procedure-1 estimate: the
/// universe key mixed with every semantic input of the estimator —
/// `nmax`, `K`, the master seed, the detection definition, and the
/// tracked fault indices. [`Procedure1Config::threads`] is deliberately
/// excluded: per-set RNG streams derive from the master seed, so the
/// estimate is bit-identical for every worker count.
#[must_use]
pub fn procedure1_key(
    universe: &FaultUniverse,
    tracked: &[usize],
    config: &Procedure1Config,
) -> ArtifactKey {
    let mut h = Fnv64::new();
    h.update(b"ndetect.procedure1");
    h.update_u64(u64::from(CODEC_VERSION));
    h.update_u64(universe.store_key().0);
    h.update_u64(u64::from(config.nmax));
    h.update_u64(config.num_test_sets as u64);
    h.update_u64(config.seed);
    h.update(&[definition_tag(config.definition)]);
    h.update_u64(tracked.len() as u64);
    for &j in tracked {
        h.update_u64(j as u64);
    }
    ArtifactKey(h.finish())
}

impl Encode for DetectionProbabilities {
    fn encode(&self, e: &mut Encoder) {
        e.put_u32(self.nmax);
        e.put_usize(self.num_test_sets);
        self.tracked.encode(e);
        self.d.encode(e);
    }
}

impl Decode for DetectionProbabilities {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let nmax = d.get_u32()?;
        let num_test_sets = d.get_usize()?;
        let tracked = Vec::<usize>::decode(d)?;
        let counts = Vec::<Vec<u32>>::decode(d)?;
        if counts.len() != nmax as usize {
            return Err(CodecError::new("row count != nmax"));
        }
        if counts.iter().any(|row| row.len() != tracked.len()) {
            return Err(CodecError::new("row width != tracked count"));
        }
        Ok(DetectionProbabilities {
            nmax,
            num_test_sets,
            tracked,
            d: counts,
        })
    }
}

impl DetectionProbabilities {
    /// Validates a decoded estimate against the live inputs it is being
    /// loaded for: configuration and tracked list must agree, every
    /// count must be a plausible `d(n, g)` (at most `K`, monotone
    /// nondecreasing in `n`). `false` means the entry is stale or
    /// colliding and must be treated as a miss.
    fn is_consistent_with(&self, tracked: &[usize], config: &Procedure1Config) -> bool {
        self.nmax == config.nmax
            && self.num_test_sets == config.num_test_sets
            && self.tracked == tracked
            && self
                .d
                .iter()
                .all(|row| row.iter().all(|&c| c as usize <= self.num_test_sets))
            && self.d.windows(2).all(|adjacent| {
                adjacent[0]
                    .iter()
                    .zip(&adjacent[1])
                    .all(|(prev, next)| prev <= next)
            })
    }
}

/// Like [`estimate_detection_probabilities`], with the
/// content-addressed on-disk store as a fast path: Procedure 1 is
/// seeded, so its `K × nmax` construction is fully cacheable. A valid
/// entry (keyed by circuit, universe options, `nmax`, `K`, seed,
/// definition, and the tracked list — see [`procedure1_key`]) skips
/// every test-set construction; a miss estimates normally and
/// populates the store best effort. Corrupt or stale entries are
/// silently treated as misses.
///
/// # Errors
///
/// Returns [`CoreError::BadConfig`] for zero `nmax`/`K` and
/// [`CoreError::FaultIndex`] if a tracked index is out of range (the
/// same validation as the uncached path, performed before any store
/// access).
pub fn estimate_detection_probabilities_stored(
    universe: &FaultUniverse,
    tracked: &[usize],
    config: &Procedure1Config,
    store: Option<&Store>,
) -> Result<DetectionProbabilities, CoreError> {
    let Some(store) = store else {
        return estimate_detection_probabilities(universe, tracked, config);
    };
    // Validate before consulting the store so error behaviour is
    // identical cold and warm.
    config.validate()?;
    for &j in tracked {
        if j >= universe.bridges().len() {
            return Err(CoreError::FaultIndex {
                index: j,
                len: universe.bridges().len(),
            });
        }
    }
    let key = procedure1_key(universe, tracked, config);
    if let Some(payload) = store.load(key, KIND_PROCEDURE1) {
        if let Ok(probs) = decode_from_slice::<DetectionProbabilities>(&payload) {
            if probs.is_consistent_with(tracked, config) {
                return Ok(probs);
            }
        }
    }
    let probs = estimate_detection_probabilities(universe, tracked, config)?;
    store.save_best_effort(key, KIND_PROCEDURE1, &encode_to_vec(&probs));
    Ok(probs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worst_case::WorstCaseAnalysis;
    use ndetect_circuits::figure1;

    fn universe() -> FaultUniverse {
        FaultUniverse::build(&figure1::netlist()).unwrap()
    }

    #[test]
    fn every_set_is_an_n_detection_set_under_definition_1() {
        let u = universe();
        let config = Procedure1Config {
            nmax: 3,
            num_test_sets: 5,
            ..Default::default()
        };
        let series = construct_test_set_series(&u, &config).unwrap();
        for n in 1..=3u32 {
            for set in &series.sets[(n - 1) as usize] {
                for (fi, t_f) in u.target_sets().iter().enumerate() {
                    let want = (t_f.len()).min(n as usize);
                    let got = set.detection_count(t_f);
                    assert!(got >= want, "n={n} target {fi}: {got} < {want} in {set}");
                }
            }
        }
    }

    #[test]
    fn sets_grow_monotonically_with_n() {
        let u = universe();
        let config = Procedure1Config {
            nmax: 4,
            num_test_sets: 3,
            ..Default::default()
        };
        let series = construct_test_set_series(&u, &config).unwrap();
        for k in 0..3 {
            for n in 1..4 {
                let prev = &series.sets[n - 1][k];
                let next = &series.sets[n][k];
                assert!(next.len() >= prev.len());
                // Prefix property: iteration n only appends.
                assert_eq!(&next.vectors()[..prev.len()], prev.vectors());
            }
        }
    }

    #[test]
    fn construction_is_deterministic_and_seed_sensitive() {
        let u = universe();
        let config = Procedure1Config {
            nmax: 2,
            num_test_sets: 4,
            ..Default::default()
        };
        let a = construct_test_set_series(&u, &config).unwrap();
        let b = construct_test_set_series(&u, &config).unwrap();
        assert_eq!(a.sets, b.sets);
        let other = Procedure1Config {
            seed: 999,
            ..config
        };
        let c = construct_test_set_series(&u, &other).unwrap();
        assert_ne!(a.sets, c.sets);
    }

    #[test]
    fn probabilities_are_monotone_in_n_and_bounded() {
        let u = universe();
        let wc = WorstCaseAnalysis::compute(&u);
        let tracked: Vec<usize> = (0..u.bridges().len()).collect();
        let config = Procedure1Config {
            nmax: 5,
            num_test_sets: 200,
            ..Default::default()
        };
        let probs = estimate_detection_probabilities(&u, &tracked, &config).unwrap();
        for (pos, &j) in tracked.iter().enumerate() {
            let mut prev = 0.0;
            for n in 1..=5 {
                let p = probs.probability(n, pos);
                assert!((0.0..=1.0).contains(&p));
                assert!(p >= prev, "p must be monotone in n");
                prev = p;
            }
            // Guarantee: once n >= nmin(g), p = 1.
            if let Some(m) = wc.nmin(j) {
                if m <= 5 {
                    assert_eq!(probs.probability(5, pos), 1.0, "bridge {pos}");
                }
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let u = universe();
        let tracked: Vec<usize> = (0..u.bridges().len()).collect();
        let base = Procedure1Config {
            nmax: 3,
            num_test_sets: 50,
            threads: 1,
            ..Default::default()
        };
        let a = estimate_detection_probabilities(&u, &tracked, &base).unwrap();
        let b = estimate_detection_probabilities(
            &u,
            &tracked,
            &Procedure1Config { threads: 4, ..base },
        )
        .unwrap();
        assert_eq!(a.d, b.d);
    }

    #[test]
    fn definition2_never_reduces_detection_probability_here() {
        let u = universe();
        let tracked: Vec<usize> = (0..u.bridges().len()).collect();
        let base = Procedure1Config {
            nmax: 3,
            num_test_sets: 300,
            ..Default::default()
        };
        let d1 = estimate_detection_probabilities(&u, &tracked, &base).unwrap();
        let d2 = estimate_detection_probabilities(
            &u,
            &tracked,
            &Procedure1Config {
                definition: DetectionDefinition::SufficientlyDifferent,
                ..base
            },
        )
        .unwrap();
        // Definition 2 sets are supersets in spirit: on this circuit the
        // average detection probability must not degrade.
        let avg1: f64 = (0..tracked.len()).map(|p| d1.probability(3, p)).sum();
        let avg2: f64 = (0..tracked.len()).map(|p| d2.probability(3, p)).sum();
        assert!(avg2 >= avg1 - 1e-9, "avg def2 {avg2} < avg def1 {avg1}");
    }

    #[test]
    fn bad_configs_rejected() {
        let u = universe();
        let bad = Procedure1Config {
            nmax: 0,
            ..Default::default()
        };
        assert!(matches!(
            construct_test_set_series(&u, &bad),
            Err(CoreError::BadConfig { .. })
        ));
        let bad = Procedure1Config {
            num_test_sets: 0,
            ..Default::default()
        };
        assert!(construct_test_set_series(&u, &bad).is_err());
        assert!(matches!(
            estimate_detection_probabilities(&u, &[999], &Procedure1Config::default()),
            Err(CoreError::FaultIndex { .. })
        ));
    }

    fn temp_store(tag: &str) -> (Store, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "ndetect-procedure1-store-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        (Store::open(&dir).unwrap(), dir)
    }

    #[test]
    fn stored_estimates_hit_warm_and_are_bit_identical() {
        let u = universe();
        let (store, dir) = temp_store("warm");
        let tracked: Vec<usize> = (0..u.bridges().len()).collect();
        let config = Procedure1Config {
            nmax: 3,
            num_test_sets: 40,
            ..Default::default()
        };
        let cold =
            estimate_detection_probabilities_stored(&u, &tracked, &config, Some(&store)).unwrap();
        assert_eq!(store.session_hits(), 0);
        assert_eq!(store.session_misses(), 1);
        let warm =
            estimate_detection_probabilities_stored(&u, &tracked, &config, Some(&store)).unwrap();
        assert_eq!(store.session_hits(), 1);
        assert_eq!(cold.d, warm.d);
        assert_eq!(cold.tracked(), warm.tracked());
        // Thread count changes neither the key nor the payload.
        let threaded =
            estimate_detection_probabilities_stored(&u, &tracked, &config, Some(&store)).unwrap();
        assert_eq!(cold.d, threaded.d);
        // ...and matches the uncached path exactly.
        let direct = estimate_detection_probabilities(&u, &tracked, &config).unwrap();
        assert_eq!(cold.d, direct.d);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn stored_estimate_key_is_sensitive_to_every_semantic_input() {
        let u = universe();
        let tracked: Vec<usize> = (0..u.bridges().len()).collect();
        let base = Procedure1Config {
            nmax: 3,
            num_test_sets: 40,
            ..Default::default()
        };
        let k = procedure1_key(&u, &tracked, &base);
        assert_eq!(
            k,
            procedure1_key(&u, &tracked, &Procedure1Config { threads: 7, ..base })
        );
        assert_ne!(
            k,
            procedure1_key(&u, &tracked, &Procedure1Config { nmax: 4, ..base })
        );
        assert_ne!(
            k,
            procedure1_key(
                &u,
                &tracked,
                &Procedure1Config {
                    num_test_sets: 41,
                    ..base
                }
            )
        );
        assert_ne!(
            k,
            procedure1_key(&u, &tracked, &Procedure1Config { seed: 1, ..base })
        );
        assert_ne!(
            k,
            procedure1_key(
                &u,
                &tracked,
                &Procedure1Config {
                    definition: DetectionDefinition::SufficientlyDifferent,
                    ..base
                }
            )
        );
        assert_ne!(k, procedure1_key(&u, &tracked[1..], &base));
    }

    #[test]
    fn corrupt_stored_estimates_degrade_to_recomputation() {
        let u = universe();
        let (store, dir) = temp_store("corrupt");
        let tracked: Vec<usize> = (0..u.bridges().len()).collect();
        let config = Procedure1Config {
            nmax: 2,
            num_test_sets: 25,
            ..Default::default()
        };
        let cold =
            estimate_detection_probabilities_stored(&u, &tracked, &config, Some(&store)).unwrap();
        // Overwrite the entry with a decodable payload for a *different*
        // configuration: the consistency check must reject it.
        let alien = DetectionProbabilities {
            nmax: 2,
            num_test_sets: 99,
            tracked: tracked.clone(),
            d: vec![vec![0; tracked.len()]; 2],
        };
        let key = procedure1_key(&u, &tracked, &config);
        store
            .save(key, KIND_PROCEDURE1, &encode_to_vec(&alien))
            .unwrap();
        let redo =
            estimate_detection_probabilities_stored(&u, &tracked, &config, Some(&store)).unwrap();
        assert_eq!(cold.d, redo.d);
        // Error behaviour is identical warm: a bad tracked index fails
        // before the store is consulted.
        assert!(matches!(
            estimate_detection_probabilities_stored(&u, &[999], &config, Some(&store)),
            Err(CoreError::FaultIndex { .. })
        ));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn histogram_row_is_monotone_nondecreasing() {
        let u = universe();
        let tracked: Vec<usize> = (0..u.bridges().len()).collect();
        let config = Procedure1Config {
            nmax: 2,
            num_test_sets: 100,
            ..Default::default()
        };
        let probs = estimate_detection_probabilities(&u, &tracked, &config).unwrap();
        let row = probs.histogram_row(2);
        assert_eq!(row.len(), 11);
        for w in row.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(row[10], tracked.len()); // p >= 0 counts everything
    }
}
