//! Worst-case and average-case analysis of n-detection test sets.
//!
//! A from-scratch implementation of Pomeranz & Reddy, *Worst-Case and
//! Average-Case Analysis of n-Detection Test Sets* (DATE 2005), on top of
//! the exhaustive fault-simulation substrate of `ndetect-faults`.
//!
//! # The two analyses
//!
//! **Worst case** ([`WorstCaseAnalysis`]): for an untargeted fault `g`
//! and a target fault `f` whose detection sets overlap,
//! `nmin(g,f) = N(f) − M(g,f) + 1` is the smallest number of detections
//! of `f` that *forces* any test set to pick a vector from `T(g)`;
//! `nmin(g)` is the minimum over all targets. Any n-detection test set
//! with `n ≥ nmin(g)` is **guaranteed** to detect `g`, no matter how
//! adversarially it was generated.
//!
//! **Average case** ([`estimate_detection_probabilities`]): the paper's
//! Procedure 1 builds `K` random n-detection test sets and estimates
//! `p(n,g)` — the probability that an arbitrary n-detection test set
//! detects `g` — as the fraction of the `K` sets that detect it.
//!
//! **Definition 2** ([`DetectionDefinition::SufficientlyDifferent`]):
//! the stricter counting rule from the paper's Section 4 — two tests
//! count as different detections of `f` only if the vector of their
//! common bits does not already detect `f` under three-valued
//! simulation. Using it inside Procedure 1 yields more diverse test
//! sets and measurably higher `p(n,g)` (the paper's Table 6).
//!
//! # Quickstart
//!
//! ```
//! use ndetect_circuits::figure1;
//! use ndetect_core::WorstCaseAnalysis;
//! use ndetect_faults::FaultUniverse;
//!
//! let universe = FaultUniverse::build(&figure1::netlist()).unwrap();
//! let wc = WorstCaseAnalysis::compute(&universe);
//! let g0 = universe.find_bridge("9", false, "10", true).unwrap();
//! assert_eq!(wc.nmin(g0), Some(3)); // the paper's nmin(g0)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atpg;
mod average_case;
mod definition;
mod distribution;
mod error;
pub mod partition;
pub mod report;
mod summary;
mod test_set;
mod worst_case;

pub use average_case::{
    construct_test_set_series, estimate_detection_probabilities,
    estimate_detection_probabilities_stored, procedure1_key, DetectionProbabilities,
    Procedure1Config, TestSetSeries, KIND_PROCEDURE1,
};
pub use definition::{Def2Cache, DetectionDefinition};
pub use distribution::NminDistribution;
pub use error::CoreError;
pub use summary::{AnalysisConfig, CircuitAnalysis};
pub use test_set::TestSet;
pub use worst_case::{WorstCaseAnalysis, KIND_WORST_CASE};
