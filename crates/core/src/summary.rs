//! One-call convenience API: run the full paper analysis on a circuit.

use crate::average_case::{estimate_detection_probabilities, DetectionProbabilities};
use crate::distribution::NminDistribution;
use crate::error::CoreError;
use crate::worst_case::WorstCaseAnalysis;
use ndetect_faults::{FaultError, FaultUniverse};
use ndetect_netlist::Netlist;
use std::fmt;

/// Configuration for [`CircuitAnalysis::run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AnalysisConfig {
    /// The `n` of interest (the paper's practical bound, 10).
    pub nmax: u32,
    /// Random test sets for the average case (0 disables the
    /// average-case pass entirely).
    pub num_test_sets: usize,
    /// Seed for the average-case pass.
    pub seed: u64,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            nmax: 10,
            num_test_sets: 200,
            seed: 0x5EED_0001,
        }
    }
}

/// Everything the paper computes for one circuit, bundled: the fault
/// universe, the worst-case `nmin` analysis, and (optionally) the
/// average-case detection probabilities for the tail faults.
pub struct CircuitAnalysis {
    universe: FaultUniverse,
    worst_case: WorstCaseAnalysis,
    tail: Vec<usize>,
    probabilities: Option<DetectionProbabilities>,
    config: AnalysisConfig,
}

impl CircuitAnalysis {
    /// Runs the complete analysis.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Faults`] if the circuit cannot be simulated
    /// exhaustively and [`CoreError::BadConfig`] for invalid settings.
    pub fn run(netlist: &Netlist, config: AnalysisConfig) -> Result<Self, CoreError> {
        let universe = FaultUniverse::build(netlist)
            .map_err(|e: FaultError| CoreError::Faults(e.to_string()))?;
        let worst_case = WorstCaseAnalysis::compute(&universe);
        let tail = worst_case.tail_indices(config.nmax + 1);
        let probabilities = if config.num_test_sets == 0 || tail.is_empty() {
            None
        } else {
            Some(estimate_detection_probabilities(
                &universe,
                &tail,
                &crate::average_case::Procedure1Config {
                    nmax: config.nmax,
                    num_test_sets: config.num_test_sets,
                    seed: config.seed,
                    ..Default::default()
                },
            )?)
        };
        Ok(CircuitAnalysis {
            universe,
            worst_case,
            tail,
            probabilities,
            config,
        })
    }

    /// The fault universe (F, G, detection sets).
    #[must_use]
    pub fn universe(&self) -> &FaultUniverse {
        &self.universe
    }

    /// The worst-case `nmin` analysis.
    #[must_use]
    pub fn worst_case(&self) -> &WorstCaseAnalysis {
        &self.worst_case
    }

    /// Bridge indices with `nmin > nmax` (no guarantee at the chosen n).
    #[must_use]
    pub fn tail(&self) -> &[usize] {
        &self.tail
    }

    /// Average-case probabilities for the tail (absent when the tail is
    /// empty or the average-case pass was disabled).
    #[must_use]
    pub fn probabilities(&self) -> Option<&DetectionProbabilities> {
        self.probabilities.as_ref()
    }

    /// The configuration used.
    #[must_use]
    pub fn config(&self) -> AnalysisConfig {
        self.config
    }

    /// The `nmin` distribution at or above a floor (Figure 2 helper).
    #[must_use]
    pub fn distribution(&self, floor: u32) -> NminDistribution {
        NminDistribution::collect(&self.worst_case, floor)
    }

    /// Expected number of untargeted faults escaping a random
    /// nmax-detection test set: 0 for guaranteed faults, `1 − p` summed
    /// over the tail (0 when the average-case pass was disabled but the
    /// tail is empty; `None` when probabilities are unavailable for a
    /// non-empty tail).
    #[must_use]
    pub fn expected_escapes(&self) -> Option<f64> {
        if self.tail.is_empty() {
            return Some(0.0);
        }
        self.probabilities
            .as_ref()
            .map(|p| p.expected_escapes(self.config.nmax))
    }
}

impl fmt::Display for CircuitAnalysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.universe)?;
        writeln!(f, "{}", self.worst_case)?;
        match (&self.probabilities, self.expected_escapes()) {
            (Some(_), Some(esc)) => write!(
                f,
                "expected escapes at n = {}: {esc:.2} of {} tail faults",
                self.config.nmax,
                self.tail.len()
            ),
            _ => write!(
                f,
                "tail faults: {} (average case not estimated)",
                self.tail.len()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndetect_circuits::figure1;

    #[test]
    fn full_run_on_figure1() {
        let analysis = CircuitAnalysis::run(
            &figure1::netlist(),
            AnalysisConfig {
                nmax: 3,
                num_test_sets: 50,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(analysis.universe().bridges().len(), 10);
        // nmin(g6) = 4 > 3 puts g6 in the tail at nmax = 3.
        assert!(!analysis.tail().is_empty());
        let probs = analysis.probabilities().expect("tail is non-empty");
        assert_eq!(probs.tracked().len(), analysis.tail().len());
        assert!(analysis.expected_escapes().unwrap() >= 0.0);
        assert!(analysis.to_string().contains("expected escapes"));
    }

    #[test]
    fn average_case_can_be_disabled() {
        let analysis = CircuitAnalysis::run(
            &figure1::netlist(),
            AnalysisConfig {
                nmax: 3,
                num_test_sets: 0,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(analysis.probabilities().is_none());
        assert!(analysis.expected_escapes().is_none());
    }

    #[test]
    fn empty_tail_short_circuits() {
        // At nmax = 10 the example circuit has no tail (max nmin = 4).
        let analysis =
            CircuitAnalysis::run(&figure1::netlist(), AnalysisConfig::default()).unwrap();
        assert!(analysis.tail().is_empty());
        assert_eq!(analysis.expected_escapes(), Some(0.0));
        assert!(analysis.probabilities().is_none());
        assert!(analysis.distribution(1).total() > 0);
    }
}
