//! Greedy compact n-detection test generation (extension).
//!
//! The paper motivates its analysis with *compact* n-detection test sets
//! produced by ATPG. This module provides a deterministic greedy
//! set-cover generator over the exhaustive detection tables, used as the
//! third test-generation method in the ablation benches: its bridging
//! coverage can be compared against the random Procedure-1 sets
//! (Definition 1 and 2).

use crate::test_set::TestSet;
use ndetect_faults::FaultUniverse;

/// Builds a compact n-detection test set greedily: repeatedly add the
/// vector that raises the most still-deficient target-fault detection
/// counts (ties broken by the smallest vector index), until every target
/// `f` is detected `min(n, N(f))` times.
///
/// The result is deterministic and typically several times smaller than
/// a random Procedure-1 set for the same `n`.
///
/// ```
/// use ndetect_circuits::figure1;
/// use ndetect_core::atpg::greedy_n_detection;
/// use ndetect_faults::FaultUniverse;
///
/// let u = FaultUniverse::build(&figure1::netlist()).unwrap();
/// let t1 = greedy_n_detection(&u, 1);
/// // Every detectable target is detected at least once.
/// for (f, t_f) in u.targets().iter().zip(u.target_sets()) {
///     assert!(t_f.is_empty() || t1.detects(t_f), "{f:?}");
/// }
/// ```
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn greedy_n_detection(universe: &FaultUniverse, n: u32) -> TestSet {
    assert!(n >= 1, "n must be at least 1");
    let num_patterns = universe.space().num_patterns();

    // Remaining need per target and, per vector, the current gain
    // (number of needy targets it detects).
    let mut need: Vec<u32> = universe
        .target_sets()
        .iter()
        .map(|t| n.min(u32::try_from(t.len()).expect("set fits u32")))
        .collect();
    let mut gain: Vec<i64> = vec![0; num_patterns];
    let mut targets_of_vector: Vec<Vec<u32>> = vec![Vec::new(); num_patterns];
    for (fi, set) in universe.target_sets().iter().enumerate() {
        if need[fi] == 0 {
            continue;
        }
        for v in set.iter() {
            gain[v] += 1;
            targets_of_vector[v].push(fi as u32);
        }
    }

    let mut set = TestSet::new(num_patterns);
    let mut outstanding: u64 = need.iter().map(|&x| u64::from(x)).sum();
    while outstanding > 0 {
        // Pick the highest-gain vector not already chosen.
        let (best_v, best_gain) = gain
            .iter()
            .enumerate()
            .filter(|&(v, _)| !set.contains(v))
            .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(&a.0)))
            .expect("pattern space non-empty");
        if *best_gain <= 0 {
            break; // nothing useful left (all remaining needs unreachable)
        }
        set.push(best_v);
        for &f in &targets_of_vector[best_v] {
            let fi = f as usize;
            if need[fi] == 0 {
                continue;
            }
            need[fi] -= 1;
            outstanding -= 1;
            if need[fi] == 0 {
                // Fault saturated: its vectors lose one unit of gain.
                for v in universe.target_set(fi).iter() {
                    gain[v] -= 1;
                }
            }
        }
    }
    set
}

/// Fraction of the universe's untargeted (bridging) faults detected by a
/// test set — the coverage metric the ablation reports.
#[must_use]
pub fn bridge_coverage(universe: &FaultUniverse, set: &TestSet) -> f64 {
    if universe.bridges().is_empty() {
        return 100.0;
    }
    let detected = universe
        .bridge_sets()
        .iter()
        .filter(|t_g| set.detects(t_g))
        .count();
    100.0 * detected as f64 / universe.bridges().len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndetect_circuits::figure1;

    #[test]
    fn greedy_sets_meet_detection_requirements() {
        let u = FaultUniverse::build(&figure1::netlist()).unwrap();
        for n in 1..=4u32 {
            let set = greedy_n_detection(&u, n);
            for (fi, t_f) in u.target_sets().iter().enumerate() {
                let want = (t_f.len()).min(n as usize);
                assert!(set.detection_count(t_f) >= want, "n={n} target {fi}");
            }
        }
    }

    #[test]
    fn greedy_sets_grow_with_n_and_are_compact() {
        let u = FaultUniverse::build(&figure1::netlist()).unwrap();
        let s1 = greedy_n_detection(&u, 1);
        let s4 = greedy_n_detection(&u, 4);
        assert!(s1.len() <= s4.len());
        // The exhaustive space has 16 vectors; a compact 1-detection set
        // needs far fewer.
        assert!(s1.len() <= 8, "got {}", s1.len());
    }

    #[test]
    fn greedy_is_deterministic() {
        let u = FaultUniverse::build(&figure1::netlist()).unwrap();
        assert_eq!(greedy_n_detection(&u, 3), greedy_n_detection(&u, 3));
    }

    #[test]
    fn coverage_increases_with_n() {
        let u = FaultUniverse::build(&figure1::netlist()).unwrap();
        let c1 = bridge_coverage(&u, &greedy_n_detection(&u, 1));
        let c8 = bridge_coverage(&u, &greedy_n_detection(&u, 8));
        assert!(c8 >= c1);
        assert!(c8 <= 100.0 + 1e-9);
    }
}
