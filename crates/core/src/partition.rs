//! Output-cone partitioned analysis (the paper's Section-4 scaling
//! suggestion).
//!
//! Exhaustive analysis needs `2^I` vectors, so wide circuits are out of
//! reach directly. The paper notes that "one can partition a larger
//! circuit into smaller subcircuits and apply the analysis to the
//! subcircuits". This module implements the natural partition: the
//! fanin cone of each primary output is extracted as a standalone
//! circuit (its inputs are the subset of primary inputs feeding that
//! output) and analysed independently.
//!
//! Per-cone results are conservative for detection guarantees: a cone
//! only observes its own output, whereas the full circuit may also
//! detect a fault through other outputs.

use crate::error::CoreError;
use crate::report::TABLE2_THRESHOLDS;
use crate::worst_case::WorstCaseAnalysis;
use ndetect_faults::FaultUniverse;
use ndetect_netlist::{fanin_cone, GateKind, Netlist, NetlistBuilder, NodeId};
use std::collections::HashMap;

/// Extracts the fanin cone of output slot `slot` as a standalone
/// netlist: inputs are the primary inputs inside the cone (original
/// order and names preserved), the only output is the cone root.
///
/// # Panics
///
/// Panics if `slot` is out of range.
#[must_use]
pub fn cone_netlist(netlist: &Netlist, slot: usize) -> Netlist {
    let root = netlist.outputs()[slot];
    let cone = fanin_cone(netlist, root);
    let in_cone: std::collections::HashSet<NodeId> = cone.iter().copied().collect();

    let mut b = NetlistBuilder::new(format!(
        "{}~cone_{}",
        netlist.name(),
        netlist.node_name(root)
    ));
    let mut map: HashMap<NodeId, NodeId> = HashMap::new();
    // Inputs first, in the original order.
    for &pi in netlist.inputs() {
        if in_cone.contains(&pi) {
            map.insert(pi, b.input(netlist.node_name(pi)));
        }
    }
    // Gates in the parent's topological order restricted to the cone.
    for &id in netlist.topo_order() {
        if !in_cone.contains(&id) || netlist.node(id).kind() == GateKind::Input {
            continue;
        }
        let fanins: Vec<NodeId> = netlist.node(id).fanins().iter().map(|f| map[f]).collect();
        let new_id = b
            .gate(netlist.node(id).kind(), netlist.node_name(id), &fanins)
            .expect("cone extraction preserves validity");
        map.insert(id, new_id);
    }
    b.output(map[&root]);
    b.build().expect("cone of a valid netlist is valid")
}

/// Worst-case summary of one output cone.
#[derive(Clone, Debug, PartialEq)]
pub struct ConeReport {
    /// Name of the output whose cone was analysed.
    pub output_name: String,
    /// Inputs of the cone (exhaustive space is `2^this`).
    pub num_inputs: usize,
    /// Gates in the cone.
    pub num_gates: usize,
    /// Collapsed target faults in the cone.
    pub num_targets: usize,
    /// Detectable bridging faults in the cone.
    pub num_bridges: usize,
    /// `(n, % of cone bridges with nmin ≤ n)` at the Table-2 thresholds.
    pub coverage: Vec<(u32, f64)>,
    /// Cone bridges needing `n ≥ 11` for guaranteed detection.
    pub tail_11: usize,
    /// Kernel mode the cone's simulator ran in (`"full"` or `"tiled"`,
    /// see [`ndetect_faults::FaultSimulator::kernel_mode`]).
    pub kernel: &'static str,
    /// Per-worker kernel working-set bytes of the cone's simulator
    /// ([`ndetect_faults::FaultSimulator::data_plane_bytes`]).
    pub data_plane_bytes: u64,
}

/// Analyses every output cone of `netlist` independently, with the auto
/// worker count (see [`analyze_output_cones_with`]).
///
/// Cones wider than the exhaustive limit are reported as errors by
/// the underlying simulator; `max_cone_inputs` lets the caller skip
/// them instead (cones with more inputs are silently omitted).
///
/// # Errors
///
/// Returns [`CoreError::Faults`] if a retained cone still exceeds the
/// simulator's limits.
pub fn analyze_output_cones(
    netlist: &Netlist,
    max_cone_inputs: usize,
) -> Result<Vec<ConeReport>, CoreError> {
    analyze_output_cones_with(netlist, max_cone_inputs, 0)
}

/// Analyses every output cone with up to `num_threads` workers (`0` =
/// auto) for each cone's fault simulation and `nmin` pass. Results are
/// identical for every thread count.
///
/// # Errors
///
/// Returns [`CoreError::Faults`] if a retained cone still exceeds the
/// simulator's limits.
pub fn analyze_output_cones_with(
    netlist: &Netlist,
    max_cone_inputs: usize,
    num_threads: usize,
) -> Result<Vec<ConeReport>, CoreError> {
    analyze_output_cones_stored(netlist, max_cone_inputs, num_threads, None)
}

/// Analyses every output cone, routing each cone's fault universe and
/// `nmin` vector through the content-addressed artifact store when one
/// is given — cone netlists are keyed by their own canonical structure,
/// so re-running a wide-circuit analysis is incremental per cone.
///
/// # Errors
///
/// Returns [`CoreError::Faults`] if a retained cone still exceeds the
/// simulator's limits.
pub fn analyze_output_cones_stored(
    netlist: &Netlist,
    max_cone_inputs: usize,
    num_threads: usize,
    store: Option<&ndetect_store::Store>,
) -> Result<Vec<ConeReport>, CoreError> {
    analyze_output_cones_budget(
        netlist,
        max_cone_inputs,
        num_threads,
        ndetect_sim::MemoryBudget::Auto,
        store,
    )
}

/// Like [`analyze_output_cones_stored`], with an explicit per-worker
/// memory budget for each cone's fault simulation (a performance knob —
/// reports are identical for every budget).
///
/// # Errors
///
/// Returns [`CoreError::Faults`] if a retained cone still exceeds the
/// simulator's limits.
pub fn analyze_output_cones_budget(
    netlist: &Netlist,
    max_cone_inputs: usize,
    num_threads: usize,
    mem_budget: ndetect_sim::MemoryBudget,
    store: Option<&ndetect_store::Store>,
) -> Result<Vec<ConeReport>, CoreError> {
    let mut reports = Vec::new();
    for slot in 0..netlist.num_outputs() {
        let cone = cone_netlist(netlist, slot);
        if cone.num_inputs() > max_cone_inputs {
            continue;
        }
        let options = ndetect_faults::UniverseOptions {
            threads: num_threads,
            mem_budget,
            ..ndetect_faults::UniverseOptions::default()
        };
        let universe = FaultUniverse::build_stored(&cone, options, store)
            .map_err(|e| CoreError::Faults(e.to_string()))?;
        let wc = WorstCaseAnalysis::compute_stored(&universe, num_threads, store);
        reports.push(ConeReport {
            output_name: netlist.node_name(netlist.outputs()[slot]).to_string(),
            num_inputs: cone.num_inputs(),
            num_gates: cone.num_gates(),
            num_targets: universe.targets().len(),
            num_bridges: universe.bridges().len(),
            coverage: TABLE2_THRESHOLDS
                .iter()
                .map(|&n| (n, wc.coverage_percent(n)))
                .collect(),
            tail_11: wc.tail_count(11),
            kernel: universe.simulator().kernel_mode(),
            data_plane_bytes: universe.simulator().data_plane_bytes(),
        });
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndetect_circuits::{extra, figure1};

    #[test]
    fn cone_extraction_preserves_behaviour() {
        let n = extra::c17();
        for slot in 0..n.num_outputs() {
            let cone = cone_netlist(&n, slot);
            assert_eq!(cone.num_outputs(), 1);
            // Exhaustively compare against the parent on the cone's inputs
            // (free parent inputs set to 0).
            let cone_inputs: Vec<&str> = cone.inputs().iter().map(|&i| cone.node_name(i)).collect();
            for v in 0..(1usize << cone.num_inputs()) {
                let cone_bits: Vec<bool> = (0..cone.num_inputs())
                    .map(|i| (v >> (cone.num_inputs() - 1 - i)) & 1 == 1)
                    .collect();
                let mut parent_bits = vec![false; n.num_inputs()];
                for (ci, name) in cone_inputs.iter().enumerate() {
                    let pid = n.node_by_name(name).unwrap();
                    let pos = n.inputs().iter().position(|&x| x == pid).unwrap();
                    parent_bits[pos] = cone_bits[ci];
                }
                let parent_out = n.eval_bool(&parent_bits)[slot];
                let cone_out = cone.eval_bool(&cone_bits)[0];
                assert_eq!(parent_out, cone_out, "slot {slot} v={v}");
            }
        }
    }

    #[test]
    fn figure1_cones_are_tiny() {
        let n = figure1::netlist();
        let reports = analyze_output_cones(&n, 8).unwrap();
        assert_eq!(reports.len(), 3);
        for r in &reports {
            assert_eq!(r.num_inputs, 2);
            assert_eq!(r.num_gates, 1);
            // Single-gate cones have no bridging pairs.
            assert_eq!(r.num_bridges, 0);
        }
    }

    #[test]
    fn max_inputs_filter_skips_wide_cones() {
        let n = extra::c17();
        let all = analyze_output_cones(&n, 16).unwrap();
        assert_eq!(all.len(), 2);
        let none = analyze_output_cones(&n, 2).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn cone_analysis_runs_on_adder() {
        let n = extra::ripple_adder(3);
        let reports = analyze_output_cones(&n, 16).unwrap();
        assert_eq!(reports.len(), 4);
        // The last sum bit and carry see the whole input space.
        let widest = reports.iter().map(|r| r.num_inputs).max().unwrap();
        assert_eq!(widest, 7);
        // Coverage columns are monotone.
        for r in &reports {
            let mut prev = 0.0;
            for &(_, pct) in &r.coverage {
                assert!(pct >= prev - 1e-9);
                prev = pct;
            }
        }
    }
}
