//! Error type for the analysis crate.

use std::error::Error;
use std::fmt;

/// Errors produced by the analyses.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A configuration value was invalid (e.g. `nmax == 0` or `K == 0`).
    BadConfig {
        /// What was wrong.
        message: String,
    },
    /// A referenced fault index was out of range.
    FaultIndex {
        /// The offending index.
        index: usize,
        /// The population size.
        len: usize,
    },
    /// An underlying fault-universe operation failed.
    Faults(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::BadConfig { message } => write!(f, "bad configuration: {message}"),
            CoreError::FaultIndex { index, len } => {
                write!(
                    f,
                    "fault index {index} out of range for population of {len}"
                )
            }
            CoreError::Faults(msg) => write!(f, "fault universe error: {msg}"),
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert!(CoreError::BadConfig {
            message: "K must be positive".into()
        }
        .to_string()
        .contains("K must be positive"));
        assert!(CoreError::FaultIndex { index: 9, len: 3 }
            .to_string()
            .contains("9"));
    }
}
