//! Test sets: ordered collections of distinct input vectors.

use ndetect_sim::VectorSet;
use std::fmt;

/// A test set: distinct input vectors in insertion order, with a bitset
/// for O(1) membership.
///
/// Insertion order matters for the paper's Definition 2, whose greedy
/// detection counting scans tests in the order they entered the set.
///
/// ```
/// use ndetect_core::TestSet;
/// let mut t = TestSet::new(16);
/// assert!(t.push(6));
/// assert!(t.push(3));
/// assert!(!t.push(6)); // duplicates are ignored
/// assert_eq!(t.vectors(), &[6, 3]);
/// assert!(t.contains(3));
/// assert_eq!(t.len(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TestSet {
    order: Vec<u32>,
    members: VectorSet,
}

impl TestSet {
    /// Creates an empty test set over a space of `num_patterns` vectors.
    #[must_use]
    pub fn new(num_patterns: usize) -> Self {
        TestSet {
            order: Vec::new(),
            members: VectorSet::new(num_patterns),
        }
    }

    /// Adds a vector; returns `false` (and does nothing) if it was
    /// already present.
    ///
    /// # Panics
    ///
    /// Panics if `vector` is outside the space.
    pub fn push(&mut self, vector: usize) -> bool {
        if self.members.contains(vector) {
            return false;
        }
        self.members.insert(vector);
        self.order
            .push(u32::try_from(vector).expect("vector fits u32"));
        true
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, vector: usize) -> bool {
        self.members.contains(vector)
    }

    /// The vectors, in insertion order.
    #[must_use]
    pub fn vectors(&self) -> &[u32] {
        &self.order
    }

    /// The membership bitset.
    #[must_use]
    pub fn as_vector_set(&self) -> &VectorSet {
        &self.members
    }

    /// Number of tests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Returns `true` if the set has no tests.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Number of detections of a fault under the paper's Definition 1:
    /// `|T(f) ∩ T|`.
    #[must_use]
    pub fn detection_count(&self, t_f: &VectorSet) -> usize {
        self.members.intersection_count(t_f)
    }

    /// Whether the set detects a fault at all (`T(f) ∩ T ≠ ∅`).
    #[must_use]
    pub fn detects(&self, t_f: &VectorSet) -> bool {
        self.members.intersects(t_f)
    }
}

impl fmt::Display for TestSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.order.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_counts_match_paper_example() {
        // T(f1) = {6,7,12,13,14,15}; a set containing {12,13,14,15}
        // detects f1 four times without touching T(g0) = {6,7}.
        let t_f1 = VectorSet::from_vectors(16, [6, 7, 12, 13, 14, 15]);
        let t_g0 = VectorSet::from_vectors(16, [6, 7]);
        let mut ts = TestSet::new(16);
        for v in [12, 13, 14, 15] {
            ts.push(v);
        }
        assert_eq!(ts.detection_count(&t_f1), 4);
        assert!(!ts.detects(&t_g0));
        // A fifth detection forces a T(g0) vector.
        ts.push(6);
        assert_eq!(ts.detection_count(&t_f1), 5);
        assert!(ts.detects(&t_g0));
    }

    #[test]
    fn insertion_order_is_preserved() {
        let mut ts = TestSet::new(64);
        for v in [9, 1, 33, 2] {
            ts.push(v);
        }
        assert_eq!(ts.vectors(), &[9, 1, 33, 2]);
        assert_eq!(ts.to_string(), "[9 1 33 2]");
    }

    #[test]
    fn duplicates_ignored() {
        let mut ts = TestSet::new(8);
        assert!(ts.push(5));
        assert!(!ts.push(5));
        assert_eq!(ts.len(), 1);
        assert!(!ts.is_empty());
    }
}
