//! `ndetect-obs`: the workspace's observability substrate.
//!
//! Every layer of the analysis pipeline — fault simulation, the
//! on-disk store, the generator, the serving loop — used to grow its
//! own ad-hoc counters with no shared vocabulary and no way to answer
//! "where did this request's time go?". This crate is the one layer
//! they all report through instead:
//!
//! * **Metrics** ([`metrics`]): atomic counters, gauges, and
//!   log-bucketed histograms in a [`Registry`]. Cheap enough to stay on
//!   in release builds (one relaxed atomic RMW per event); p50/p90/p99
//!   are derivable from the histogram buckets. A process-wide
//!   [`global`] registry carries library-level metrics; components with
//!   per-instance populations (a serving engine, a store) keep their
//!   own registries and expose both.
//! * **Tracing** ([`trace`]): RAII span guards with per-thread
//!   parent/child nesting, written as JSONL when tracing is enabled
//!   (`NDETECT_TRACE` / `--trace-out`) and a few nanoseconds of
//!   overhead when it is not (one relaxed atomic load).
//! * **Exposition** ([`expose`]): Prometheus-style text rendering of a
//!   registry (the serve `metrics` verb) plus a strict parser used by
//!   tests and CI to assert the exposition stays well-formed.
//! * **Reports** ([`report`]): offline aggregation of a JSONL trace
//!   into a per-span time table (`ndet trace report`).
//!
//! The crate is dependency-free (std only) and every hot-path
//! operation is wait-free on the happy path.

#![forbid(unsafe_code)]

pub mod expose;
pub mod metrics;
pub mod report;
pub mod trace;

pub use expose::{parse_exposition, Sample};
pub use metrics::{global, Counter, Gauge, Histogram, Metric, Registry};
pub use report::{render_report, TraceReport};
pub use trace::{Span, SpanRecord};
