//! Prometheus-style text exposition of a [`Registry`], plus a strict
//! parser used by tests and CI to assert the exposition stays
//! well-formed.
//!
//! The format is the Prometheus text format restricted to what this
//! workspace emits: `# TYPE` comments, bare `name value` samples for
//! counters and gauges, and cumulative `name_bucket{le="..."}` series
//! (with `_sum` / `_count`) for histograms. Histogram bucket bounds are
//! the log₂ bounds from [`crate::metrics::Histogram`]; empty buckets
//! are elided (cumulative counts make that lossless for quantile
//! queries, and a 64-bucket histogram would otherwise be mostly
//! zeros).

use crate::metrics::{Histogram, Metric, Registry, HISTOGRAM_BUCKETS};
use std::fmt::Write as _;

/// Renders every metric in `registry` as Prometheus text exposition.
#[must_use]
pub fn render(registry: &Registry) -> String {
    let mut out = String::new();
    for (name, metric) in registry.snapshot() {
        match metric {
            Metric::Counter(c) => {
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {}", c.get());
            }
            Metric::Gauge(g) => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {}", g.get());
            }
            Metric::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {name} histogram");
                let counts = h.bucket_counts();
                let mut cumulative = 0u64;
                for (i, &c) in counts.iter().enumerate() {
                    cumulative += c;
                    if c == 0 {
                        continue;
                    }
                    if i >= HISTOGRAM_BUCKETS {
                        // Overflow lands in the +Inf bucket below.
                        continue;
                    }
                    let _ = writeln!(
                        out,
                        "{name}_bucket{{le=\"{}\"}} {cumulative}",
                        Histogram::bucket_bound(i)
                    );
                }
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                let _ = writeln!(out, "{name}_sum {}", h.sum());
                let _ = writeln!(out, "{name}_count {}", h.count());
            }
        }
    }
    out
}

/// One parsed exposition sample line.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Metric name, including any `_bucket` / `_sum` / `_count` suffix.
    pub name: String,
    /// The `le` label for `_bucket` samples (`None` otherwise); `+Inf`
    /// is represented as `u64::MAX`.
    pub le: Option<u64>,
    /// The sample value.
    pub value: u64,
}

/// Parses Prometheus text exposition as written by [`render`].
///
/// Strict on purpose: every line must be a well-formed `# TYPE`
/// comment or a sample whose value parses, histogram `_bucket` series
/// must be cumulative (non-decreasing) and end at `+Inf`, and names
/// must match `[a-zA-Z_][a-zA-Z0-9_]*`. CI scrapes the serve `metrics`
/// verb through this parser, so any formatting regression fails fast.
///
/// # Errors
///
/// Returns `Err(description)` naming the first offending line.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    // (name, last cumulative value, saw +Inf) for the open bucket run.
    let mut open_bucket: Option<(String, u64, bool)> = None;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        let err = |msg: &str| format!("line {}: {msg}: `{line}`", lineno + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.split_whitespace();
            if parts.next() != Some("TYPE") {
                return Err(err("only # TYPE comments are emitted"));
            }
            let name = parts.next().ok_or_else(|| err("# TYPE missing name"))?;
            check_name(name).map_err(|m| err(&m))?;
            match parts.next() {
                Some("counter" | "gauge" | "histogram") => {}
                _ => return Err(err("bad metric kind")),
            }
            if parts.next().is_some() {
                return Err(err("trailing tokens after # TYPE"));
            }
            continue;
        }
        let (name_part, value_part) = line
            .rsplit_once(' ')
            .ok_or_else(|| err("sample line has no value"))?;
        let value: u64 = value_part
            .parse()
            .map_err(|_| err("sample value is not a u64"))?;
        let (name, le) = match name_part.split_once('{') {
            None => {
                check_name(name_part).map_err(|m| err(&m))?;
                (name_part.to_string(), None)
            }
            Some((name, labels)) => {
                check_name(name).map_err(|m| err(&m))?;
                if !name.ends_with("_bucket") {
                    return Err(err("only _bucket samples carry labels"));
                }
                let le = labels
                    .strip_prefix("le=\"")
                    .and_then(|rest| rest.strip_suffix("\"}"))
                    .ok_or_else(|| err("expected le=\"...\" label"))?;
                let bound = if le == "+Inf" {
                    u64::MAX
                } else {
                    le.parse().map_err(|_| err("le bound is not a u64"))?
                };
                (name.to_string(), Some(bound))
            }
        };
        match (&mut open_bucket, &le) {
            (Some((open, last, saw_inf)), Some(bound)) if *open == name => {
                if value < *last {
                    return Err(err("histogram buckets are not cumulative"));
                }
                *last = value;
                *saw_inf = *bound == u64::MAX;
            }
            (open, Some(bound)) => {
                if let Some((name, _, saw_inf)) = open.take() {
                    if !saw_inf {
                        return Err(err(&format!("`{name}` series ended before +Inf")));
                    }
                }
                *open = Some((name.clone(), value, *bound == u64::MAX));
            }
            (open, None) => {
                if let Some((bname, _, saw_inf)) = open.take() {
                    // A _sum/_count line legitimately follows +Inf.
                    if !saw_inf {
                        return Err(err(&format!("`{bname}` series ended before +Inf")));
                    }
                }
            }
        }
        samples.push(Sample { name, le, value });
    }
    if let Some((name, _, saw_inf)) = open_bucket {
        if !saw_inf {
            return Err(format!("`{name}` series ended before +Inf"));
        }
    }
    Ok(samples)
}

/// The value of the sample named `name` (first match), if present.
#[must_use]
pub fn sample_value(samples: &[Sample], name: &str) -> Option<u64> {
    samples
        .iter()
        .find(|s| s.name == name && s.le.is_none())
        .map(|s| s.value)
}

fn check_name(name: &str) -> Result<(), String> {
    let mut chars = name.chars();
    let ok_first = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
    if ok_first && chars.all(|c| c.is_ascii_alphanumeric() || c == '_') {
        Ok(())
    } else {
        Err(format!("bad metric name `{name}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_round_trips_through_parse() {
        let r = Registry::new();
        r.counter("store_hits").add(42);
        r.gauge("open_conns").set(3);
        let h = r.histogram("request_latency_us");
        for v in [1u64, 3, 3, 900, u64::MAX] {
            h.record(v);
        }
        let text = render(&r);
        let samples = parse_exposition(&text).expect("own exposition parses");
        assert_eq!(sample_value(&samples, "store_hits"), Some(42));
        assert_eq!(sample_value(&samples, "open_conns"), Some(3));
        assert_eq!(sample_value(&samples, "request_latency_us_count"), Some(5));
        // Cumulative buckets: le=1 holds 1 sample, le=4 holds 3,
        // le=1024 holds 4, +Inf holds all 5 (one overflowed).
        let buckets: Vec<(u64, u64)> = samples
            .iter()
            .filter(|s| s.name == "request_latency_us_bucket")
            .map(|s| (s.le.unwrap(), s.value))
            .collect();
        assert_eq!(buckets, vec![(1, 1), (4, 3), (1024, 4), (u64::MAX, 5)]);
    }

    #[test]
    fn parser_rejects_malformed_exposition() {
        assert!(parse_exposition("name").is_err(), "no value");
        assert!(parse_exposition("name x").is_err(), "bad value");
        assert!(parse_exposition("1bad 3").is_err(), "bad name");
        assert!(parse_exposition("# HELP x y").is_err(), "non-TYPE comment");
        assert!(parse_exposition("# TYPE x widget").is_err(), "bad kind");
        assert!(
            parse_exposition("x_bucket{le=\"2\"} 5\nx_bucket{le=\"4\"} 3\nx_bucket{le=\"+Inf\"} 5")
                .is_err(),
            "non-cumulative buckets"
        );
        assert!(
            parse_exposition("x_bucket{le=\"2\"} 5").is_err(),
            "bucket series without +Inf"
        );
        assert!(
            parse_exposition("x{le=\"2\"} 5").is_err(),
            "labels on a non-bucket sample"
        );
    }

    #[test]
    fn empty_registry_renders_empty() {
        let r = Registry::new();
        assert_eq!(render(&r), "");
        assert_eq!(parse_exposition("").unwrap(), vec![]);
    }
}
