//! Span tracing: RAII scope timers with per-thread parent/child
//! nesting, written as JSONL when tracing is enabled.
//!
//! A [`Span`] guard is opened at the top of a traced scope and records
//! its duration on drop. Nesting is tracked per thread (a span opened
//! while another is active becomes its child); worker threads started
//! mid-span can link back to the spawning span explicitly with
//! [`span_under`]. When tracing is disabled — the default — opening a
//! span is one relaxed atomic load and no allocation, so the guards
//! stay in release hot paths.
//!
//! Enabling: [`init_file`] (the `--trace-out` flag), [`init_from_env`]
//! (`NDETECT_TRACE=<path>`), or [`init_writer`] (tests). Each span
//! close appends one JSON object line:
//!
//! ```text
//! {"name":"universe.build","id":3,"parent":1,"thread":1,
//!  "start_ns":1200,"dur_ns":154000000,"fields":{"circuit":"rie"}}
//! ```
//!
//! `id` is unique per process, `parent` is `0` for roots, `start_ns`
//! counts from the moment tracing was enabled, and `fields` carries
//! span-specific key/value annotations (attached with
//! [`Span::field`]). Lines are flushed as they are written, so a trace
//! is valid JSONL even if the process is killed mid-run.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Whether a sink is installed; the only cost uninstrumented runs pay.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Monotonic span id allocator (0 is reserved for "no parent").
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Monotonic thread id allocator (stable `u64` ids, unlike
/// `std::thread::ThreadId` which cannot be read as an integer).
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

/// The trace output; `None` until one of the init functions runs.
static SINK: OnceLock<Mutex<Option<Box<dyn Write + Send>>>> = OnceLock::new();

/// The instant `start_ns` counts from (set once, at first enable).
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    /// The stack of open span ids on this thread (innermost last).
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static THREAD_ID: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
}

fn sink() -> &'static Mutex<Option<Box<dyn Write + Send>>> {
    SINK.get_or_init(|| Mutex::new(None))
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Whether tracing is currently enabled.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Routes trace output to (truncates) the JSONL file at `path`.
///
/// # Errors
///
/// Returns the I/O error if the file cannot be created.
pub fn init_file(path: &str) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    init_writer(Box::new(std::io::BufWriter::new(file)));
    Ok(())
}

/// Routes trace output to an arbitrary writer (tests use an in-memory
/// buffer). Replaces any previous sink.
pub fn init_writer(writer: Box<dyn Write + Send>) {
    let _ = epoch();
    *sink().lock().expect("trace sink") = Some(writer);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Enables tracing when `NDETECT_TRACE=<path>` is set; returns whether
/// tracing is now enabled. A path that cannot be created is reported on
/// stderr and tracing stays off (observability must never fail the
/// analysis).
pub fn init_from_env() -> bool {
    if enabled() {
        return true;
    }
    if let Ok(path) = std::env::var("NDETECT_TRACE") {
        if !path.is_empty() {
            if let Err(e) = init_file(&path) {
                eprintln!("warning: cannot open NDETECT_TRACE file `{path}`: {e}");
            }
        }
    }
    enabled()
}

/// Disables tracing and drops the sink (flushing it). Used by tests
/// and by the CLI teardown.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
    if let Some(mut writer) = sink().lock().expect("trace sink").take() {
        let _ = writer.flush();
    }
}

/// Flushes the sink (a no-op when disabled). Lines are already flushed
/// per record; this exists for writers that buffer despite that.
pub fn flush() {
    if let Some(writer) = sink().lock().expect("trace sink").as_mut() {
        let _ = writer.flush();
    }
}

/// The id of the innermost open span on this thread (`0` when none) —
/// capture it before handing work to another thread, then open the
/// worker's root span with [`span_under`].
#[must_use]
pub fn current_span_id() -> u64 {
    STACK.with(|s| s.borrow().last().copied().unwrap_or(0))
}

/// One completed span, as written to (and parsed back from) the JSONL
/// trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Dotted lowercase span name (`universe.build`, `serve.request`).
    pub name: String,
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Parent span id; 0 for roots.
    pub parent: u64,
    /// Process-local thread id (1-based, stable per thread).
    pub thread: u64,
    /// Start, in nanoseconds since tracing was enabled.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Span-specific annotations, in insertion order.
    pub fields: Vec<(String, String)>,
}

impl SpanRecord {
    /// Serializes the record as one JSON object (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"id\":{},\"parent\":{},\"thread\":{},\"start_ns\":{},\"dur_ns\":{},\"fields\":{{",
            escape(&self.name),
            self.id,
            self.parent,
            self.thread,
            self.start_ns,
            self.dur_ns,
        );
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":\"{}\"", escape(k), escape(v));
        }
        out.push_str("}}");
        out
    }

    /// Parses one JSONL line back into a record.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax problem. The parser is
    /// strict about the shape this module writes (all six fixed keys,
    /// string-valued `fields`), so it doubles as a trace validator.
    pub fn parse(line: &str) -> Result<Self, String> {
        let mut p = Parser::new(line);
        p.expect('{')?;
        let mut record = SpanRecord {
            name: String::new(),
            id: 0,
            parent: 0,
            thread: 0,
            start_ns: 0,
            dur_ns: 0,
            fields: Vec::new(),
        };
        let mut seen_name = false;
        let mut seen_id = false;
        loop {
            let key = p.string()?;
            p.expect(':')?;
            match key.as_str() {
                "name" => {
                    record.name = p.string()?;
                    seen_name = true;
                }
                "id" => {
                    record.id = p.number()?;
                    seen_id = true;
                }
                "parent" => record.parent = p.number()?,
                "thread" => record.thread = p.number()?,
                "start_ns" => record.start_ns = p.number()?,
                "dur_ns" => record.dur_ns = p.number()?,
                "fields" => {
                    p.expect('{')?;
                    if !p.eat('}') {
                        loop {
                            let k = p.string()?;
                            p.expect(':')?;
                            let v = p.string()?;
                            record.fields.push((k, v));
                            if !p.eat(',') {
                                break;
                            }
                        }
                        p.expect('}')?;
                    }
                }
                other => return Err(format!("unknown key `{other}`")),
            }
            if !p.eat(',') {
                break;
            }
        }
        p.expect('}')?;
        p.end()?;
        if !seen_name || !seen_id {
            return Err("record is missing `name` or `id`".into());
        }
        Ok(record)
    }
}

/// JSON string escaping for the subset of JSON this module emits.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A minimal strict parser over one JSONL trace line.
struct Parser<'a> {
    rest: &'a str,
}

impl<'a> Parser<'a> {
    fn new(line: &'a str) -> Self {
        Parser { rest: line.trim() }
    }

    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start();
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        match self.rest.strip_prefix(c) {
            Some(rest) => {
                self.rest = rest;
                Ok(())
            }
            None => Err(format!("expected `{c}` at `{}`", truncate(self.rest))),
        }
    }

    fn eat(&mut self, c: char) -> bool {
        self.skip_ws();
        match self.rest.strip_prefix(c) {
            Some(rest) => {
                self.rest = rest;
                true
            }
            None => false,
        }
    }

    fn end(&mut self) -> Result<(), String> {
        self.skip_ws();
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(format!("trailing content `{}`", truncate(self.rest)))
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let digits: String = self.rest.chars().take_while(char::is_ascii_digit).collect();
        if digits.is_empty() {
            return Err(format!("expected a number at `{}`", truncate(self.rest)));
        }
        self.rest = &self.rest[digits.len()..];
        digits
            .parse()
            .map_err(|_| format!("number out of range `{digits}`"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        let mut chars = self.rest.char_indices();
        loop {
            let Some((i, c)) = chars.next() else {
                return Err("unterminated string".into());
            };
            match c {
                '"' => {
                    self.rest = &self.rest[i + 1..];
                    return Ok(out);
                }
                '\\' => {
                    let Some((_, esc)) = chars.next() else {
                        return Err("unterminated escape".into());
                    };
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let Some((_, h)) = chars.next() else {
                                    return Err("truncated \\u escape".into());
                                };
                                code = code * 16
                                    + h.to_digit(16).ok_or("bad hex digit in \\u escape")?;
                            }
                            // Surrogate pairs (this writer never emits
                            // them, but accept full JSON anyway).
                            if (0xD800..0xDC00).contains(&code) {
                                let tail: String = chars.by_ref().take(6).map(|(_, c)| c).collect();
                                let low = tail
                                    .strip_prefix("\\u")
                                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                                    .filter(|l| (0xDC00..0xE000).contains(l))
                                    .ok_or("unpaired surrogate in \\u escape")?;
                                code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            }
                            out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                        }
                        other => return Err(format!("unknown escape `\\{other}`")),
                    }
                }
                c => out.push(c),
            }
        }
    }
}

fn truncate(s: &str) -> &str {
    let end = s
        .char_indices()
        .map(|(i, _)| i)
        .take_while(|&i| i <= 24)
        .last()
        .unwrap_or(0);
    &s[..end]
}

/// An open span; closing (dropping) it writes the record. Obtained from
/// [`span`] / [`span_under`].
pub struct Span {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    name: &'static str,
    id: u64,
    parent: u64,
    started: Instant,
    fields: Vec<(String, String)>,
}

impl Span {
    /// Attaches a key/value annotation (a no-op when tracing is off, so
    /// callers may compute values behind [`Span::is_active`]).
    pub fn field(&mut self, key: &str, value: impl ToString) {
        if let Some(active) = &mut self.active {
            active.fields.push((key.to_string(), value.to_string()));
        }
    }

    /// Whether this span is recording (tracing was enabled when it was
    /// opened). Guard expensive field computations with this.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.active.is_some()
    }

    /// This span's id (0 when inactive) — pass to [`span_under`] on
    /// worker threads.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.active.as_ref().map_or(0, |a| a.id)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if stack.last() == Some(&active.id) {
                stack.pop();
            } else {
                // Out-of-order drop (a guard outlived its scope):
                // remove wherever it is rather than corrupting the
                // stack below it.
                stack.retain(|&id| id != active.id);
            }
        });
        let record = SpanRecord {
            name: active.name.to_string(),
            id: active.id,
            parent: active.parent,
            thread: THREAD_ID.with(|t| *t),
            start_ns: active.started.duration_since(epoch()).as_nanos() as u64,
            dur_ns: active.started.elapsed().as_nanos() as u64,
            fields: active.fields,
        };
        if let Some(writer) = sink().lock().expect("trace sink").as_mut() {
            // Write-and-flush per record: traces stay valid JSONL even
            // if the process dies mid-run. Tracing is opt-in, so the
            // flush cost is never paid by uninstrumented runs.
            let _ = writeln!(writer, "{}", record.to_json());
            let _ = writer.flush();
        }
    }
}

fn open(name: &'static str, parent: u64) -> Span {
    if !enabled() {
        return Span { active: None };
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    STACK.with(|s| s.borrow_mut().push(id));
    Span {
        active: Some(ActiveSpan {
            name,
            id,
            parent,
            started: Instant::now(),
            fields: Vec::new(),
        }),
    }
}

/// Opens a span as a child of this thread's innermost open span (a root
/// span when none is open).
#[must_use]
pub fn span(name: &'static str) -> Span {
    open(name, current_span_id())
}

/// Opens a span under an explicit parent id — the cross-thread link for
/// worker threads (capture [`current_span_id`] or [`Span::id`] before
/// spawning).
#[must_use]
pub fn span_under(name: &'static str, parent: u64) -> Span {
    open(name, parent)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trips_through_json() {
        let record = SpanRecord {
            name: "universe.build".into(),
            id: 7,
            parent: 3,
            thread: 2,
            start_ns: 123,
            dur_ns: 456_789,
            fields: vec![
                ("circuit".into(), "rie".into()),
                ("weird".into(), "a\"b\\c\nd\te\u{1}π".into()),
            ],
        };
        let json = record.to_json();
        assert_eq!(SpanRecord::parse(&json).unwrap(), record);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(SpanRecord::parse("").is_err());
        assert!(SpanRecord::parse("{}").is_err());
        assert!(SpanRecord::parse("{\"name\":\"x\"}").is_err(), "missing id");
        assert!(SpanRecord::parse("{\"name\":\"x\",\"id\":1} trailing").is_err());
        assert!(SpanRecord::parse("{\"name\":\"x\",\"id\":-1}").is_err());
        assert!(SpanRecord::parse("{\"name\":\"x\",\"id\":1,\"bogus\":2}").is_err());
        assert!(SpanRecord::parse("{\"name\":\"\\q\",\"id\":1}").is_err());
    }

    #[test]
    fn surrogate_pair_escapes_parse() {
        let line = "{\"name\":\"\\ud83d\\ude00\",\"id\":1,\"fields\":{}}";
        assert_eq!(SpanRecord::parse(line).unwrap().name, "😀");
        assert!(SpanRecord::parse("{\"name\":\"\\ud83d\",\"id\":1}").is_err());
    }

    #[test]
    fn disabled_spans_cost_nothing_and_record_nothing() {
        // Tracing is off by default in the test process.
        let mut span = span("test.disabled");
        assert!(!span.is_active());
        assert_eq!(span.id(), 0);
        span.field("k", "v");
        drop(span);
    }
}
