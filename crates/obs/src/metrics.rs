//! The metrics registry: named counters, gauges, and log-bucketed
//! histograms backed by relaxed atomics.
//!
//! Handles are `Arc`s: callers fetch a metric once (at construction or
//! through a `OnceLock`) and then update it lock-free; the registry
//! lock is only taken on registration and exposition. Components with
//! per-instance metric populations (a serving engine, one store) own a
//! private [`Registry`] and register their existing atomics into it, so
//! the legacy render paths (`counters` verb, `cache stats`) and the
//! Prometheus exposition read the same cells — one source of truth.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero, returning the previous value (used by the
    /// store's counter-merge path).
    pub fn take(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

/// A settable instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A fresh gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` (saturating at zero under races only in the sense
    /// that callers must pair add/sub; the raw cell wraps).
    pub fn sub(&self, n: u64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of finite histogram buckets: bucket `i` (0-based) has upper
/// bound `2^i`, so 64 buckets cover every `u64` except the top
/// half-open overflow bucket rendered as `+Inf`.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A log₂-bucketed histogram of `u64` samples (latencies in
/// microseconds, sizes in bytes, ...).
///
/// Bucket `i` counts samples in `(2^(i-1), 2^i]` (bucket 0 counts
/// `0` and `1`); samples above `2^63` land in the overflow bucket.
/// Recording is one relaxed `fetch_add` per sample on three cells, so
/// the histogram stays on in release builds. Quantiles are derived
/// from the buckets: [`Histogram::quantile_upper_bound`] returns the
/// upper bound of the bucket containing the requested quantile — an
/// upper estimate within a factor of 2, which is what log buckets buy.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS + 1],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// The bucket index a value lands in: the smallest `i` with
    /// `value <= 2^i` (the overflow bucket for values above `2^63`).
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        if value <= 1 {
            0
        } else {
            // ceil(log2(value)): one past the top bit unless the value
            // is an exact power of two.
            64 - (value - 1).leading_zeros() as usize
        }
    }

    /// The inclusive upper bound of finite bucket `i`.
    #[must_use]
    pub fn bucket_bound(i: usize) -> u64 {
        1u64 << i
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        let i = Self::bucket_index(value).min(HISTOGRAM_BUCKETS);
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A snapshot of the per-bucket (non-cumulative) counts.
    #[must_use]
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// The upper bound of the bucket containing quantile `q` (0..=1):
    /// e.g. `quantile_upper_bound(0.99)` is an upper estimate of p99
    /// within the bucket's factor-of-2 resolution. `None` when empty.
    #[must_use]
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(if i >= HISTOGRAM_BUCKETS {
                    u64::MAX
                } else {
                    Self::bucket_bound(i)
                });
            }
        }
        Some(u64::MAX)
    }
}

/// A handle to any registered metric.
#[derive(Clone, Debug)]
pub enum Metric {
    /// A monotonic counter.
    Counter(Arc<Counter>),
    /// An instantaneous gauge.
    Gauge(Arc<Gauge>),
    /// A log-bucketed histogram.
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics; see the module docs.
///
/// Registration is create-or-get: two calls with the same name return
/// the same cell (so call sites do not need to coordinate), but a name
/// can only carry one metric kind — re-registering under a different
/// kind panics, since silently splitting a name would corrupt the
/// exposition.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Creates (or fetches) the counter named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let handle = self.register(name, || Metric::Counter(Arc::new(Counter::new())));
        match handle {
            Metric::Counter(c) => c,
            other => panic!("metric `{name}` is not a counter: {other:?}"),
        }
    }

    /// Creates (or fetches) the gauge named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let handle = self.register(name, || Metric::Gauge(Arc::new(Gauge::new())));
        match handle {
            Metric::Gauge(g) => g,
            other => panic!("metric `{name}` is not a gauge: {other:?}"),
        }
    }

    /// Creates (or fetches) the histogram named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let handle = self.register(name, || Metric::Histogram(Arc::new(Histogram::new())));
        match handle {
            Metric::Histogram(h) => h,
            other => panic!("metric `{name}` is not a histogram: {other:?}"),
        }
    }

    /// Registers an *existing* counter cell under `name` — how
    /// components whose legacy render paths already own the atomic
    /// (store session counters, the serve `Counters` struct) join the
    /// registry without double counting.
    pub fn register_counter(&self, name: &str, counter: Arc<Counter>) {
        let mut metrics = self.metrics.lock().expect("metrics registry");
        metrics.insert(name.to_string(), Metric::Counter(counter));
    }

    /// Registers an existing gauge cell under `name`.
    pub fn register_gauge(&self, name: &str, gauge: Arc<Gauge>) {
        let mut metrics = self.metrics.lock().expect("metrics registry");
        metrics.insert(name.to_string(), Metric::Gauge(gauge));
    }

    /// Registers an existing histogram cell under `name`.
    pub fn register_histogram(&self, name: &str, histogram: Arc<Histogram>) {
        let mut metrics = self.metrics.lock().expect("metrics registry");
        metrics.insert(name.to_string(), Metric::Histogram(histogram));
    }

    fn register(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut metrics = self.metrics.lock().expect("metrics registry");
        metrics.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// A snapshot of every registered metric, sorted by name.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(String, Metric)> {
        let metrics = self.metrics.lock().expect("metrics registry");
        metrics
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Renders the registry in Prometheus text exposition format (see
    /// [`crate::expose::render`]).
    #[must_use]
    pub fn render(&self) -> String {
        crate::expose::render(self)
    }
}

/// The process-wide registry for library-level metrics (universe
/// builds, generator rounds, kernel selections). Components with
/// per-instance populations keep their own [`Registry`] instead.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_update() {
        let r = Registry::new();
        let c = r.counter("c");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(r.counter("c").get(), 5, "create-or-get shares the cell");
        let g = r.gauge("g");
        g.set(7);
        g.add(3);
        g.sub(2);
        assert_eq!(g.get(), 8);
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.gauge("x");
        let _ = r.counter("x");
    }

    #[test]
    fn histogram_bucket_boundaries_are_exact_powers_of_two() {
        // Bucket i covers (2^(i-1), 2^i]: a value exactly at a bound
        // lands in that bucket, one above spills into the next.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(5), 3);
        for i in 1..HISTOGRAM_BUCKETS {
            let bound = Histogram::bucket_bound(i);
            assert_eq!(Histogram::bucket_index(bound), i, "at bound 2^{i}");
            assert_eq!(Histogram::bucket_index(bound + 1), i + 1, "past 2^{i}");
        }
        // The top finite bound and the overflow bucket.
        assert_eq!(Histogram::bucket_index(1u64 << 63), 63);
        assert_eq!(Histogram::bucket_index((1u64 << 63) + 1), 64);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn histogram_records_and_derives_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.quantile_upper_bound(0.5), None);
        for v in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 109);
        // p50 of nine 1s and one 100: bucket le=1; p99 reaches the
        // sample at 100, whose bucket bound is 128.
        assert_eq!(h.quantile_upper_bound(0.5), Some(1));
        assert_eq!(h.quantile_upper_bound(0.99), Some(128));
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 9);
        assert_eq!(counts[Histogram::bucket_index(100)], 1);
    }

    #[test]
    fn histogram_overflow_bucket_catches_huge_samples() {
        let h = Histogram::new();
        h.record(u64::MAX);
        let counts = h.bucket_counts();
        assert_eq!(counts[HISTOGRAM_BUCKETS], 1);
        assert_eq!(h.quantile_upper_bound(1.0), Some(u64::MAX));
    }
}
