//! Offline aggregation of a JSONL trace into a per-span time table
//! (the `ndet trace report <file>` subcommand).
//!
//! Wall time is the envelope of the trace (`max(start+dur) −
//! min(start)`); per-name totals can exceed it when spans of the same
//! name overlap across threads, which the `% wall` column makes
//! visible rather than hiding.

use crate::trace::SpanRecord;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregated statistics for one span name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanStats {
    /// The span name.
    pub name: String,
    /// How many spans closed under this name.
    pub count: u64,
    /// Total nanoseconds across all spans of this name.
    pub total_ns: u64,
    /// Shortest single span.
    pub min_ns: u64,
    /// Longest single span.
    pub max_ns: u64,
}

impl SpanStats {
    /// Mean span duration in nanoseconds (0 when `count` is 0).
    #[must_use]
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// A parsed-and-aggregated trace.
#[derive(Clone, Debug, Default)]
pub struct TraceReport {
    /// Per-name statistics, sorted by descending total time.
    pub spans: Vec<SpanStats>,
    /// Total spans in the trace.
    pub records: u64,
    /// Trace envelope: `max(start + dur) − min(start)` over all spans.
    pub wall_ns: u64,
    /// Total time in spans with no recorded parent (the coverage
    /// numerator: roots partition the instrumented wall time).
    pub root_ns: u64,
}

impl TraceReport {
    /// Parses and aggregates a JSONL trace.
    ///
    /// # Errors
    ///
    /// Returns `Err(description)` naming the first malformed line —
    /// the CI obs-smoke step relies on this doubling as a validator.
    pub fn from_jsonl(text: &str) -> Result<Self, String> {
        let mut by_name: BTreeMap<String, SpanStats> = BTreeMap::new();
        let mut records = 0u64;
        let mut root_ns = 0u64;
        let mut first_start = u64::MAX;
        let mut last_end = 0u64;
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let record =
                SpanRecord::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            records += 1;
            first_start = first_start.min(record.start_ns);
            last_end = last_end.max(record.start_ns.saturating_add(record.dur_ns));
            if record.parent == 0 {
                root_ns += record.dur_ns;
            }
            let stats = by_name
                .entry(record.name.clone())
                .or_insert_with(|| SpanStats {
                    name: record.name.clone(),
                    count: 0,
                    total_ns: 0,
                    min_ns: u64::MAX,
                    max_ns: 0,
                });
            stats.count += 1;
            stats.total_ns += record.dur_ns;
            stats.min_ns = stats.min_ns.min(record.dur_ns);
            stats.max_ns = stats.max_ns.max(record.dur_ns);
        }
        let mut spans: Vec<SpanStats> = by_name.into_values().collect();
        // Descending total; BTreeMap order breaks ties by name.
        spans.sort_by_key(|s| std::cmp::Reverse(s.total_ns));
        Ok(TraceReport {
            spans,
            records,
            wall_ns: last_end.saturating_sub(first_start),
            root_ns,
        })
    }

    /// Fraction of the wall envelope covered by root spans, in percent
    /// (how much of the run the instrumentation accounts for).
    #[must_use]
    pub fn root_coverage_pct(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            100.0 * self.root_ns as f64 / self.wall_ns as f64
        }
    }
}

/// Formats nanoseconds with an adaptive unit (`ns`, `µs`, `ms`, `s`).
#[must_use]
pub fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders the report as an aligned text table, one row per span name,
/// sorted by total time descending.
#[must_use]
pub fn render_report(report: &TraceReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} spans, wall {}, root-span coverage {:.1}%",
        report.records,
        format_ns(report.wall_ns),
        report.root_coverage_pct()
    );
    if report.spans.is_empty() {
        return out;
    }
    let name_w = report
        .spans
        .iter()
        .map(|s| s.name.len())
        .max()
        .unwrap_or(4)
        .max(4);
    let _ = writeln!(
        out,
        "{:name_w$}  {:>7}  {:>10}  {:>7}  {:>10}  {:>10}  {:>10}",
        "span", "count", "total", "% wall", "mean", "min", "max"
    );
    for s in &report.spans {
        let pct = if report.wall_ns == 0 {
            0.0
        } else {
            100.0 * s.total_ns as f64 / report.wall_ns as f64
        };
        let _ = writeln!(
            out,
            "{:name_w$}  {:>7}  {:>10}  {:>6.1}%  {:>10}  {:>10}  {:>10}",
            s.name,
            s.count,
            format_ns(s.total_ns),
            pct,
            format_ns(s.mean_ns()),
            format_ns(s.min_ns),
            format_ns(s.max_ns)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &str, id: u64, parent: u64, start: u64, dur: u64) -> String {
        SpanRecord {
            name: name.into(),
            id,
            parent,
            thread: 1,
            start_ns: start,
            dur_ns: dur,
            fields: Vec::new(),
        }
        .to_json()
    }

    #[test]
    fn aggregates_per_name_and_computes_wall() {
        let trace = [
            record("request", 1, 0, 0, 1000),
            record("build", 2, 1, 100, 600),
            record("build", 3, 1, 700, 200),
            record("render", 4, 1, 900, 50),
        ]
        .join("\n");
        let report = TraceReport::from_jsonl(&trace).unwrap();
        assert_eq!(report.records, 4);
        assert_eq!(report.wall_ns, 1000);
        assert_eq!(report.root_ns, 1000);
        assert!((report.root_coverage_pct() - 100.0).abs() < 1e-9);
        assert_eq!(report.spans[0].name, "request");
        let build = report.spans.iter().find(|s| s.name == "build").unwrap();
        assert_eq!(build.count, 2);
        assert_eq!(build.total_ns, 800);
        assert_eq!(build.mean_ns(), 400);
        assert_eq!(build.min_ns, 200);
        assert_eq!(build.max_ns, 600);
        let table = render_report(&report);
        assert!(table.contains("request"), "table lists spans: {table}");
        assert!(table.contains("coverage 100.0%"), "coverage in: {table}");
    }

    #[test]
    fn rejects_malformed_trace() {
        let err = TraceReport::from_jsonl("not json").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
        let trace = format!("{}\n{{bad", record("a", 1, 0, 0, 1));
        assert!(TraceReport::from_jsonl(&trace)
            .unwrap_err()
            .starts_with("line 2:"));
    }

    #[test]
    fn empty_trace_reports_zero() {
        let report = TraceReport::from_jsonl("\n\n").unwrap();
        assert_eq!(report.records, 0);
        assert_eq!(report.wall_ns, 0);
        assert_eq!(report.root_coverage_pct(), 0.0);
    }

    #[test]
    fn format_ns_picks_units() {
        assert_eq!(format_ns(17), "17ns");
        assert_eq!(format_ns(1_700), "1.7µs");
        assert_eq!(format_ns(155_000_000), "155.00ms");
        assert_eq!(format_ns(2_500_000_000), "2.50s");
    }
}
