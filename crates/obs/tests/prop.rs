//! Property tests: trace JSONL round-trips for arbitrary span shapes
//! (adversarial names, field keys/values, extreme numeric fields), and
//! the exposition parser accepts everything the renderer emits.

use ndetect_obs::{parse_exposition, Registry, SpanRecord};
use proptest::prelude::*;

/// Maps raw code points into `char`s, keeping the adversarial ones
/// (quotes, backslashes, control characters, non-ASCII) likely.
fn chars_from(raw: &[u32]) -> String {
    raw.iter()
        .map(|&c| match c % 12 {
            0 => '"',
            1 => '\\',
            2 => '\n',
            3 => '\t',
            4 => '\r',
            5 => '\u{1}',
            6 => 'π',
            7 => '😀',
            _ => char::from_u32(0x20 + (c % 0x5f)).unwrap_or('?'),
        })
        .collect()
}

proptest! {
    #[test]
    fn span_records_round_trip_through_jsonl(
        name_raw in prop::collection::vec(any::<u32>(), 0..24),
        id in any::<u64>(),
        parent in any::<u64>(),
        thread in any::<u64>(),
        start_ns in any::<u64>(),
        dur_ns in any::<u64>(),
        fields_raw in prop::collection::vec(
            (prop::collection::vec(any::<u32>(), 0..12),
             prop::collection::vec(any::<u32>(), 0..12)),
            0..6),
    ) {
        let record = SpanRecord {
            name: chars_from(&name_raw),
            id: id.max(1),
            parent,
            thread,
            start_ns,
            dur_ns,
            fields: fields_raw
                .iter()
                .map(|(k, v)| (chars_from(k), chars_from(v)))
                .collect(),
        };
        let json = record.to_json();
        prop_assert!(!json.contains('\n'), "JSONL must be one line: {json}");
        let back = SpanRecord::parse(&json);
        prop_assert_eq!(back, Ok(record));
    }

    #[test]
    fn parsing_mangled_trace_lines_never_panics(
        raw in prop::collection::vec(any::<u32>(), 0..64),
        flip in any::<u64>(),
    ) {
        // Arbitrary garbage, and single-byte corruptions of a valid
        // line, must produce Ok or Err — never a panic.
        let garbage = chars_from(&raw);
        let _ = SpanRecord::parse(&garbage);
        let valid = SpanRecord {
            name: "serve.request".into(),
            id: 1,
            parent: 0,
            thread: 1,
            start_ns: 2,
            dur_ns: 3,
            fields: vec![("verb".into(), "worst".into())],
        }
        .to_json();
        let mut bytes = valid.into_bytes();
        let pos = (flip as usize) % bytes.len();
        bytes[pos] ^= 1 << (flip % 8);
        if let Ok(mangled) = String::from_utf8(bytes) {
            let _ = SpanRecord::parse(&mangled);
        }
    }

    #[test]
    fn parse_exposition_never_panics_on_arbitrary_bytes(
        raw in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        // The metrics scraper feeds whatever came off the wire into the
        // parser; any byte soup must come back Ok or Err, never panic.
        let text = String::from_utf8_lossy(&raw);
        let _ = parse_exposition(&text);
    }

    #[test]
    fn parse_exposition_never_panics_on_mangled_expositions(
        flip in any::<u64>(),
        extra in prop::collection::vec(any::<u8>(), 0..16),
    ) {
        // Single-bit corruptions and random suffixes on a real
        // exposition — closer to what a torn scrape produces than pure
        // garbage.
        let registry = Registry::new();
        registry.counter("requests_total").add(7);
        registry.histogram("latency_us").record(42);
        let mut bytes = registry.render().into_bytes();
        let pos = (flip as usize) % bytes.len();
        bytes[pos] ^= 1 << (flip % 8);
        bytes.extend_from_slice(&extra);
        let text = String::from_utf8_lossy(&bytes);
        let _ = parse_exposition(&text);
    }

    #[test]
    fn rendered_exposition_always_parses(
        counters in prop::collection::vec(any::<u64>(), 0..4),
        samples in prop::collection::vec(any::<u64>(), 0..32),
    ) {
        let registry = Registry::new();
        for (i, v) in counters.iter().enumerate() {
            registry.counter(&format!("c{i}")).add(*v);
            registry.gauge(&format!("g{i}")).set(*v);
        }
        let h = registry.histogram("latency_us");
        for v in &samples {
            h.record(*v);
        }
        let text = registry.render();
        let parsed = parse_exposition(&text);
        prop_assert!(parsed.is_ok(), "exposition failed to parse: {:?}\n{text}", parsed);
        let parsed = parsed.unwrap();
        for (i, v) in counters.iter().enumerate() {
            let name = format!("c{i}");
            let got = parsed.iter().find(|s| s.name == name).map(|s| s.value);
            prop_assert_eq!(got, Some(*v));
        }
        let count = parsed
            .iter()
            .find(|s| s.name == "latency_us_count")
            .map(|s| s.value);
        prop_assert_eq!(count, Some(samples.len() as u64));
    }
}
