//! End-to-end cold-vs-warm equivalence across the whole pipeline: the
//! on-disk artifact store must make repeated analyses incremental while
//! leaving every analysis result bit-identical — universes, `nmin`
//! vectors, coverage percentages, and the paper's golden Figure-1
//! numbers.

use ndetect::analysis::{
    estimate_detection_probabilities_stored, Procedure1Config, WorstCaseAnalysis,
};
use ndetect::circuits::figure1;
use ndetect::faults::{FaultUniverse, UniverseOptions};
use ndetect::gen::{generate_stored, GenOptions};
use ndetect::store::Store;
use std::path::PathBuf;

fn temp_store(tag: &str) -> (Store, PathBuf) {
    let dir = std::env::temp_dir().join(format!("ndetect-e2e-store-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    (Store::open(&dir).unwrap(), dir)
}

#[test]
fn warm_pipeline_reproduces_the_papers_figure1_numbers() {
    let (store, dir) = temp_store("figure1");
    let circuit = figure1::netlist();
    let options = UniverseOptions::default();

    // Cold pass: builds and populates the store.
    let cold_universe = FaultUniverse::build_stored(&circuit, options, Some(&store)).unwrap();
    let cold_wc = WorstCaseAnalysis::compute_stored(&cold_universe, 0, Some(&store));
    assert_eq!(store.session_hits(), 0);
    assert_eq!(store.session_misses(), 2);

    // Warm pass: everything expensive comes from disk.
    let warm_universe = FaultUniverse::build_stored(&circuit, options, Some(&store)).unwrap();
    let warm_wc = WorstCaseAnalysis::compute_stored(&warm_universe, 0, Some(&store));
    assert_eq!(store.session_hits(), 2);
    assert_eq!(store.session_misses(), 2);

    // Bit-identical analysis outputs.
    assert_eq!(cold_wc.nmin_values(), warm_wc.nmin_values());
    for n in [1, 2, 3, 4, 10] {
        assert_eq!(cold_wc.coverage_percent(n), warm_wc.coverage_percent(n));
    }

    // And both match the paper: nmin(g0) = 3, nmin(g6) = 4.
    let g0 = figure1::paper_bridge_index(&warm_universe, "9", false, "10", true).unwrap();
    let g6 = figure1::paper_bridge_index(&warm_universe, "11", false, "9", true).unwrap();
    assert_eq!(warm_wc.nmin(g0), Some(3));
    assert_eq!(warm_wc.nmin(g6), Some(4));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_pipeline_covers_generation_and_procedure1_artifacts() {
    // The full derived-artifact chain — universe, nmin vectors,
    // generated set, Procedure-1 probabilities — must be incremental
    // across processes: a warm pass performs zero recomputation and
    // reproduces every result bit-identically.
    let (store, dir) = temp_store("gen-proc1");
    let circuit = figure1::netlist();
    let options = UniverseOptions::default();
    let gen_options = GenOptions {
        n: 3,
        compact: true,
        ..GenOptions::default()
    };
    let proc1 = Procedure1Config {
        nmax: 3,
        num_test_sets: 30,
        ..Default::default()
    };

    let cold_universe = FaultUniverse::build_stored(&circuit, options, Some(&store)).unwrap();
    let cold_wc = WorstCaseAnalysis::compute_stored(&cold_universe, 0, Some(&store));
    let cold_set = generate_stored(&cold_universe, &gen_options, Some(&store));
    let tracked = cold_wc.tail_indices(3);
    assert!(!tracked.is_empty());
    let cold_probs =
        estimate_detection_probabilities_stored(&cold_universe, &tracked, &proc1, Some(&store))
            .unwrap();
    assert_eq!(store.session_hits(), 0);
    assert_eq!(store.session_misses(), 4);

    let warm_universe = FaultUniverse::build_stored(&circuit, options, Some(&store)).unwrap();
    let warm_wc = WorstCaseAnalysis::compute_stored(&warm_universe, 0, Some(&store));
    let warm_set = generate_stored(&warm_universe, &gen_options, Some(&store));
    let warm_probs =
        estimate_detection_probabilities_stored(&warm_universe, &tracked, &proc1, Some(&store))
            .unwrap();
    assert_eq!(store.session_hits(), 4);
    assert_eq!(store.session_misses(), 4);

    assert_eq!(cold_set, warm_set);
    assert!(warm_set.satisfies(&warm_universe));
    assert_eq!(cold_wc.nmin_values(), warm_wc.nmin_values());
    for n in 1..=3 {
        for pos in 0..tracked.len() {
            assert_eq!(
                cold_probs.probability(n, pos),
                warm_probs.probability(n, pos)
            );
        }
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn suite_circuit_round_trips_through_the_store() {
    let (store, dir) = temp_store("lion");
    let circuit = ndetect::circuits::build("lion").unwrap();
    let options = UniverseOptions::default();

    let cold = FaultUniverse::build_stored(&circuit, options, Some(&store)).unwrap();
    let warm = FaultUniverse::build_stored(&circuit, options, Some(&store)).unwrap();
    assert_eq!(store.session_hits(), 1);
    assert_eq!(cold.targets(), warm.targets());
    assert_eq!(cold.bridges(), warm.bridges());
    for (a, b) in cold.target_sets().iter().zip(warm.target_sets()) {
        assert_eq!(a, b);
    }
    for (a, b) in cold.bridge_sets().iter().zip(warm.bridge_sets()) {
        assert_eq!(a, b);
    }

    // The store inventory is sane: one universe entry plus counters.
    let stats = store.stats().unwrap();
    assert_eq!(stats.entries, 1);
    assert!(stats.total_bytes > 0);
    let _ = std::fs::remove_dir_all(&dir);
}
