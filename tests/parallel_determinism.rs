//! Determinism of the multi-threaded fault-simulation engine: every
//! parallel path (fault-parallel universe builds, block-parallel
//! per-fault detection sets, threaded nmin analysis) must produce
//! results bit-identical to the 1-thread run.

use ndetect::analysis::WorstCaseAnalysis;
use ndetect::faults::{FaultUniverse, UniverseOptions};
use ndetect_testutil::arb_netlist;
use proptest::prelude::*;

fn universe_with_threads(netlist: &ndetect::netlist::Netlist, threads: usize) -> FaultUniverse {
    FaultUniverse::build_with(netlist, UniverseOptions::with_threads(threads))
        .expect("circuit fits exhaustive simulation")
}

/// Asserts that two universes carry identical faults and detection sets.
fn assert_universes_identical(a: &FaultUniverse, b: &FaultUniverse, label: &str) {
    assert_eq!(a.targets(), b.targets(), "{label}: target fault lists");
    assert_eq!(a.target_sets(), b.target_sets(), "{label}: target sets");
    assert_eq!(a.bridges(), b.bridges(), "{label}: bridge fault lists");
    assert_eq!(a.bridge_sets(), b.bridge_sets(), "{label}: bridge sets");
    assert_eq!(
        a.num_undetectable_bridges(),
        b.num_undetectable_bridges(),
        "{label}: undetectable count"
    );
}

#[test]
fn universe_build_is_thread_count_invariant_on_suite_circuits() {
    // Two suite circuits of different widths: dk16 is a single-block
    // space (7 bits), keyb a 64-block space (12 bits).
    for name in ["dk16", "keyb"] {
        let netlist = ndetect::circuits::build(name).expect("suite circuit builds");
        let serial = universe_with_threads(&netlist, 1);
        let parallel = universe_with_threads(&netlist, 4);
        assert_universes_identical(&serial, &parallel, name);

        // The nmin vectors derived from the universes agree too, and the
        // threaded nmin pass agrees with the serial one.
        let wc1 = WorstCaseAnalysis::compute_with(&serial, 1);
        let wc4 = WorstCaseAnalysis::compute_with(&parallel, 4);
        assert_eq!(wc1.nmin_values(), wc4.nmin_values(), "{name}: nmin");
    }
}

#[test]
fn block_parallel_detection_sets_match_serial() {
    let netlist = ndetect::circuits::build("keyb").expect("suite circuit builds");
    let universe = universe_with_threads(&netlist, 1);
    let sim = universe.simulator();
    for &fault in universe.targets().iter().take(40) {
        let serial = sim.detection_set_stuck(&netlist, fault);
        let sharded = sim.detection_set_stuck_threaded(&netlist, fault, 4);
        assert_eq!(serial, sharded, "stuck fault {}", fault.name(&netlist));
    }
    for (j, fault) in universe.bridges().iter().enumerate().take(40) {
        let serial = sim.detection_set_bridge(&netlist, fault);
        let sharded = sim.detection_set_bridge_threaded(&netlist, fault, 4);
        assert_eq!(serial, sharded, "bridge {j}");
        assert_eq!(&serial, universe.bridge_set(j), "bridge {j} vs universe");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Universe builds on random netlists are identical for 1 and 3
    /// worker threads (3 deliberately does not divide typical fault
    /// counts, exercising uneven tiles).
    #[test]
    fn universe_build_is_thread_count_invariant_on_random_netlists(
        netlist in arb_netlist(6),
    ) {
        let serial = universe_with_threads(&netlist, 1);
        let parallel = universe_with_threads(&netlist, 3);
        assert_universes_identical(&serial, &parallel, netlist.name());
        let wc1 = WorstCaseAnalysis::compute_with(&serial, 1);
        let wc3 = WorstCaseAnalysis::compute_with(&parallel, 3);
        prop_assert_eq!(wc1.nmin_values(), wc3.nmin_values());
    }

    /// Block-parallel per-fault detection sets equal the serial ones on
    /// random netlists, for stuck-at and bridging faults alike.
    #[test]
    fn block_parallel_matches_serial_on_random_netlists(
        netlist in arb_netlist(7),
    ) {
        let universe = universe_with_threads(&netlist, 1);
        let sim = universe.simulator();
        for &fault in universe.targets() {
            let serial = sim.detection_set_stuck(&netlist, fault);
            let sharded = sim.detection_set_stuck_threaded(&netlist, fault, 2);
            prop_assert_eq!(serial, sharded, "stuck fault {}", fault.name(&netlist));
        }
        for fault in universe.bridges() {
            let serial = sim.detection_set_bridge(&netlist, fault);
            let sharded = sim.detection_set_bridge_threaded(&netlist, fault, 3);
            prop_assert_eq!(serial, sharded);
        }
    }
}
