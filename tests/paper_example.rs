//! Exact reproduction of the paper's running example (Figure 1,
//! Table 1, and the worked g0/g6 numbers). These assertions pin the
//! whole reproduction to the published ground truth: if any fault
//! semantics drifted, they would fail.

use ndetect::analysis::{report, WorstCaseAnalysis};
use ndetect::circuits::figure1;
use ndetect::faults::{FaultUniverse, StuckAtFault};

/// Paper Table 1, verbatim: (index, paper line, stuck value, T(f), nmin(g0,f)).
const TABLE1: &[(usize, usize, bool, &[usize], u32)] = &[
    (0, 1, true, &[4, 5, 6, 7], 3),
    (1, 2, false, &[6, 7, 12, 13, 14, 15], 5),
    (3, 3, false, &[2, 6, 7, 10, 14, 15], 5),
    (9, 8, false, &[2, 6, 10, 14], 4),
    (11, 9, true, &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11], 11),
    (12, 10, false, &[6, 7, 14, 15], 3),
    (
        14,
        11,
        false,
        &[1, 2, 3, 5, 6, 7, 9, 10, 11, 13, 14, 15],
        11,
    ),
];

fn universe() -> FaultUniverse {
    FaultUniverse::build(&figure1::netlist()).expect("figure1 fits exhaustive simulation")
}

#[test]
fn collapsed_fault_list_has_papers_sixteen_entries() {
    let u = universe();
    assert_eq!(u.targets().len(), 16);
    let paper_order: Vec<(usize, bool)> = u
        .targets()
        .iter()
        .map(|f| (f.line.index() + 1, f.value))
        .collect();
    assert_eq!(
        paper_order,
        vec![
            (1, true),
            (2, false),
            (2, true),
            (3, false),
            (3, true),
            (4, false),
            (5, true),
            (6, true),
            (7, true),
            (8, false),
            (9, false),
            (9, true),
            (10, false),
            (10, true),
            (11, false),
            (11, true),
        ]
    );
}

#[test]
fn table1_detection_sets_and_nmin_pairs_match_exactly() {
    let u = universe();
    let g0 = u.find_bridge("9", false, "10", true).expect("g0");
    assert_eq!(u.bridge_set(g0).to_vec(), vec![6, 7]);

    let rows = report::table1(&u, g0);
    assert_eq!(rows.len(), TABLE1.len());
    for (row, &(idx, line, value, t, nmin)) in rows.iter().zip(TABLE1) {
        assert_eq!(row.index, idx);
        let fault = u.targets()[idx];
        assert_eq!(fault.line.index() + 1, line, "f{idx} line");
        assert_eq!(fault.value, value, "f{idx} value");
        assert_eq!(row.t_set, t, "T(f{idx})");
        assert_eq!(row.nmin, nmin, "nmin(g0,f{idx})");
    }
}

#[test]
fn worked_nmin_values_match_the_paper() {
    let u = universe();
    let wc = WorstCaseAnalysis::compute(&u);
    let g0 = u.find_bridge("9", false, "10", true).expect("g0");
    assert_eq!(wc.nmin(g0), Some(3));
    let g6 = u.find_bridge("11", false, "9", true).expect("g6");
    assert_eq!(u.bridge_set(g6).to_vec(), vec![12]);
    assert_eq!(wc.nmin(g6), Some(4));
}

#[test]
fn paper_worked_counterexample_for_f0() {
    // "it is possible to detect f0 twice, using vectors 4 and 5, without
    // detecting g0. A third detection requires vector 6 or 7."
    let u = universe();
    let f0 = StuckAtFault::new(ndetect::netlist::LineId::new(0), true);
    assert_eq!(u.targets()[0], f0);
    let t_f0 = u.target_set(0);
    let g0 = u.find_bridge("9", false, "10", true).expect("g0");
    let t_g0 = u.bridge_set(g0);

    let mut adversarial = ndetect::analysis::TestSet::new(16);
    adversarial.push(4);
    adversarial.push(5);
    assert_eq!(adversarial.detection_count(t_f0), 2);
    assert!(!adversarial.detects(t_g0));
    // Any third distinct detection of f0 must come from {6,7} = T(g0).
    for v in t_f0.iter() {
        if !adversarial.contains(v) {
            assert!(t_g0.contains(v), "vector {v} would evade the guarantee");
        }
    }
}

#[test]
fn table4_structure_holds_for_k10() {
    // Table 4's content is RNG-dependent; its *structure* is asserted:
    // 10 valid 1-detection sets extended into 10 valid 2-detection sets.
    let u = universe();
    let config = ndetect::analysis::Procedure1Config {
        nmax: 2,
        num_test_sets: 10,
        seed: 1,
        ..Default::default()
    };
    let series = ndetect::analysis::construct_test_set_series(&u, &config).expect("valid config");
    assert_eq!(series.sets.len(), 2);
    for n in 1..=2usize {
        assert_eq!(series.sets[n - 1].len(), 10);
        for set in &series.sets[n - 1] {
            for t_f in u.target_sets() {
                assert!(set.detection_count(t_f) >= n.min(t_f.len()));
            }
        }
    }
}

#[test]
fn figure1_bridge_population_is_ten_detectable_of_twelve() {
    let u = universe();
    assert_eq!(u.bridges().len(), 10);
    assert_eq!(u.num_undetectable_bridges(), 2);
}
