//! Cross-crate integration tests: the full KISS2 → synthesis → fault
//! universe → worst-case → average-case pipeline on real suite
//! circuits, checking the structural invariants that must hold for
//! *any* circuit.

use ndetect::analysis::atpg::{bridge_coverage, greedy_n_detection};
use ndetect::analysis::{
    estimate_detection_probabilities, DetectionDefinition, Procedure1Config, WorstCaseAnalysis,
};
use ndetect::faults::FaultUniverse;
use ndetect::fsm::{synthesize, MinimizeMode, StateEncoding, SynthOptions};

/// Small, fast circuits exercised in debug-mode CI.
const SMALL: &[&str] = &["lion", "dk27", "bbtas", "firstex", "modulo12", "tav"];

#[test]
fn worst_case_invariants_hold_across_the_small_suite() {
    for name in SMALL {
        let netlist = ndetect::circuits::build(name).expect("suite circuit builds");
        let universe = FaultUniverse::build(&netlist).expect("fits exhaustive sim");
        let wc = WorstCaseAnalysis::compute(&universe);
        assert_eq!(wc.len(), universe.bridges().len(), "{name}");

        // Coverage is monotone and reaches 100% at the largest finite
        // nmin (if every fault has a bound).
        let mut prev = -1.0;
        for n in 1..=wc.max_finite().unwrap_or(1) {
            let c = wc.coverage_percent(n);
            assert!(c >= prev, "{name}: coverage not monotone at n={n}");
            prev = c;
        }
        let unbounded = wc.nmin_values().iter().filter(|v| v.is_none()).count();
        if unbounded == 0 {
            let top = wc.max_finite().expect("non-empty");
            assert!(
                (wc.coverage_percent(top) - 100.0).abs() < 1e-9,
                "{name}: coverage must reach 100% at nmin_max"
            );
        }

        // nmin is achieved by its witness.
        for j in (0..wc.len()).step_by(7) {
            if let (Some(nmin), Some(w)) = (wc.nmin(j), wc.witness(j)) {
                let t_f = universe.target_set(w);
                let t_g = universe.bridge_set(j);
                let m = t_f.intersection_count(t_g);
                assert!(m > 0, "{name}: witness must overlap");
                assert_eq!(t_f.len() - m + 1, nmin as usize, "{name} bridge {j}");
            }
        }
    }
}

#[test]
fn every_detection_guarantee_is_actually_honoured_by_random_sets() {
    // The central theorem of the worst-case analysis, checked
    // empirically: any n-detection test set with n >= nmin(g) detects g.
    for name in SMALL {
        let netlist = ndetect::circuits::build(name).expect("builds");
        let universe = FaultUniverse::build(&netlist).expect("fits");
        let wc = WorstCaseAnalysis::compute(&universe);
        let config = Procedure1Config {
            nmax: 5,
            num_test_sets: 20,
            seed: 42,
            ..Default::default()
        };
        let series =
            ndetect::analysis::construct_test_set_series(&universe, &config).expect("valid config");
        for n in 1..=5u32 {
            for set in &series.sets[(n - 1) as usize] {
                for (j, t_g) in universe.bridge_sets().iter().enumerate() {
                    if let Some(nmin) = wc.nmin(j) {
                        if nmin <= n {
                            assert!(
                                set.detects(t_g),
                                "{name}: guarantee violated for bridge {j} at n={n}"
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn definition2_improves_or_matches_average_coverage() {
    // The paper's Table 6 direction, on a circuit with tail faults.
    let netlist = ndetect::circuits::build("cse").expect("builds");
    let universe = FaultUniverse::build(&netlist).expect("fits");
    let wc = WorstCaseAnalysis::compute(&universe);
    let tracked = wc.tail_indices(11);
    assert!(!tracked.is_empty(), "cse must have tail faults");
    let base = Procedure1Config {
        nmax: 6,
        num_test_sets: 40,
        ..Default::default()
    };
    let d1 = estimate_detection_probabilities(&universe, &tracked, &base).expect("ok");
    let d2 = estimate_detection_probabilities(
        &universe,
        &tracked,
        &Procedure1Config {
            definition: DetectionDefinition::SufficientlyDifferent,
            ..base
        },
    )
    .expect("ok");
    // At K = 40 the escape estimates carry roughly half an escape of
    // Monte-Carlo standard error each (550 tracked faults), so the two
    // runs can differ by well over one escape in either direction even
    // though definition 2 is strictly better once K converges (at
    // K = 200 it wins 5.07 vs 7.32). Guard only against a substantial
    // regression, not against sampling noise.
    assert!(
        d2.expected_escapes(6) <= d1.expected_escapes(6) + 2.0,
        "definition 2 should not be substantially worse: {} vs {}",
        d2.expected_escapes(6),
        d1.expected_escapes(6)
    );
}

#[test]
fn greedy_sets_beat_random_sets_on_size() {
    for name in ["bbtas", "tav"] {
        let netlist = ndetect::circuits::build(name).expect("builds");
        let universe = FaultUniverse::build(&netlist).expect("fits");
        let greedy = greedy_n_detection(&universe, 3);
        let config = Procedure1Config {
            nmax: 3,
            num_test_sets: 5,
            ..Default::default()
        };
        let series =
            ndetect::analysis::construct_test_set_series(&universe, &config).expect("valid config");
        let avg_random: f64 = series.sets[2].iter().map(|s| s.len() as f64).sum::<f64>() / 5.0;
        // Greedy optimizes marginal gain, not final cardinality, so it is
        // competitive rather than strictly smaller.
        assert!(
            (greedy.len() as f64) <= avg_random * 1.2 + 1.0,
            "{name}: greedy {} not competitive with random {avg_random}",
            greedy.len()
        );
        assert!(bridge_coverage(&universe, &greedy) > 0.0);
    }
}

#[test]
fn synthesis_modes_agree_on_specified_behaviour() {
    // Direct and minimized synthesis of the same machine must agree on
    // every (state, input) pair the table specifies.
    for name in ["dk27", "ex5", "tav"] {
        let spec = ndetect::circuits::spec(name).expect("in suite");
        let fsm = spec.build_fsm();
        let enc = StateEncoding::binary(fsm.num_states());
        let direct = synthesize(
            &fsm,
            &enc,
            SynthOptions {
                minimize: MinimizeMode::Never,
            },
        )
        .expect("synthesizes");
        let minimized = synthesize(
            &fsm,
            &enc,
            SynthOptions {
                minimize: MinimizeMode::Heuristic,
            },
        )
        .expect("synthesizes");

        let ni = fsm.num_inputs();
        let nb = enc.num_bits();
        for code in 0..(1u32 << nb) {
            let Some(state) = enc.state_of_code(code) else {
                continue;
            };
            for m in 0..(1u32 << ni) {
                let Some(t) = fsm.lookup(m, state) else {
                    continue;
                };
                let mut bits = Vec::with_capacity(ni + nb);
                for i in 0..ni {
                    bits.push((m >> (ni - 1 - i)) & 1 == 1);
                }
                for j in 0..nb {
                    bits.push((code >> (nb - 1 - j)) & 1 == 1);
                }
                let a = direct.eval_bool(&bits);
                let b = minimized.eval_bool(&bits);
                // Next-state bits (after the primary outputs) must agree
                // exactly; specified output bits must agree too.
                for j in 0..nb {
                    assert_eq!(
                        a[fsm.num_outputs() + j],
                        b[fsm.num_outputs() + j],
                        "{name} ns{j} at m={m} code={code}"
                    );
                }
                for (j, bit) in t.outputs.iter().enumerate() {
                    if let ndetect::fsm::OutputBit::One | ndetect::fsm::OutputBit::Zero = bit {
                        assert_eq!(a[j], b[j], "{name} z{j} at m={m} code={code}");
                    }
                }
            }
        }
    }
}

#[test]
fn undetectable_targets_never_block_procedure1() {
    // Universes can contain undetectable (redundant) target faults;
    // Procedure 1 must still terminate and produce valid sets.
    for name in SMALL {
        let netlist = ndetect::circuits::build(name).expect("builds");
        let universe = FaultUniverse::build(&netlist).expect("fits");
        let undetectable = universe
            .target_sets()
            .iter()
            .filter(|t| t.is_empty())
            .count();
        // (Some suite circuits have redundant faults thanks to
        // don't-care minimization; either way the run must succeed.)
        let config = Procedure1Config {
            nmax: 3,
            num_test_sets: 3,
            ..Default::default()
        };
        let series =
            ndetect::analysis::construct_test_set_series(&universe, &config).expect("valid config");
        assert_eq!(series.sets.len(), 3, "{name} ({undetectable} undetectable)");
    }
}
