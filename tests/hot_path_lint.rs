//! Source-scan fallback for the hot-path allocation gate.
//!
//! The primary enforcement is clippy: `clippy.toml` disallows
//! `alloc::vec::from_elem` (the expansion of `vec![elem; n]`) and every
//! hot data-plane module opts in with
//! `#![deny(clippy::disallowed_methods)]`, so raw word-buffer
//! allocation fails `cargo clippy -- -D warnings` in CI. This test is
//! the `cargo test`-only backstop: it re-checks the same invariants by
//! scanning the sources, so the gate cannot silently rot on machines
//! (or CI legs) that never run clippy.

use std::path::PathBuf;

/// The hot data-plane modules: every repeat-form `vec![x; n]` in their
/// non-test code must either go through `ndetect_sim::rows` (the
/// sanctioned allocator) or carry an explicit
/// `#[allow(clippy::disallowed_methods)]` with a justification.
const HOT_MODULES: &[&str] = &[
    "crates/sim/src/rows.rs",
    "crates/sim/src/scratch.rs",
    "crates/sim/src/good.rs",
    "crates/sim/src/set.rs",
    "crates/faults/src/sim.rs",
    "crates/faults/src/universe.rs",
    "crates/gen/src/generate.rs",
];

/// Modules that must carry the crate-level deny gate (`rows.rs` is the
/// sanctioned allocation point itself and uses item-level `#[allow]`s
/// instead).
const DENY_GATED: &[&str] = &[
    "crates/sim/src/scratch.rs",
    "crates/sim/src/good.rs",
    "crates/sim/src/set.rs",
    "crates/faults/src/sim.rs",
    "crates/faults/src/universe.rs",
    "crates/gen/src/generate.rs",
];

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn read(rel: &str) -> String {
    let path = repo_root().join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// The non-test prefix of a module: everything before `#[cfg(test)]`
/// (test modules are exempt from the allocation discipline and carry a
/// module-level allow).
fn non_test_source(source: &str) -> &str {
    match source.find("#[cfg(test)]") {
        Some(pos) => &source[..pos],
        None => source,
    }
}

/// Whether a line contains a repeat-form `vec![elem; n]` invocation
/// (the form that expands to `alloc::vec::from_elem`).
fn has_repeat_vec(line: &str) -> bool {
    let code = line.split("//").next().unwrap_or("");
    let mut rest = code;
    while let Some(pos) = rest.find("vec![") {
        let inner = &rest[pos + 5..];
        if let Some(close) = inner.find(']') {
            if inner[..close].contains(';') {
                return true;
            }
            rest = &inner[close..];
        } else {
            // Multi-line invocation: conservatively flag it.
            return true;
        }
    }
    false
}

#[test]
fn clippy_config_disallows_raw_word_allocation() {
    let conf = read("clippy.toml");
    assert!(
        conf.contains("alloc::vec::from_elem"),
        "clippy.toml must keep disallowing alloc::vec::from_elem"
    );
    let workspace = read("Cargo.toml");
    assert!(
        workspace.contains("disallowed_methods"),
        "the workspace lint table must mention disallowed_methods \
         (allow at the workspace level; hot modules deny)"
    );
}

#[test]
fn hot_modules_carry_the_deny_gate() {
    for rel in DENY_GATED {
        let source = read(rel);
        assert!(
            source.contains("#![deny(clippy::disallowed_methods)]"),
            "{rel} lost its #![deny(clippy::disallowed_methods)] gate"
        );
    }
    // The sanctioned allocator keeps its explicit item-level allows.
    let rows = read("crates/sim/src/rows.rs");
    assert!(
        rows.contains("#[allow(clippy::disallowed_methods)]"),
        "rows.rs must keep the sanctioned allow on its allocators"
    );
}

#[test]
fn hot_modules_allocate_word_buffers_only_through_rows() {
    for rel in HOT_MODULES {
        let source = read(rel);
        let lines: Vec<&str> = non_test_source(&source).lines().collect();
        for (i, line) in lines.iter().enumerate() {
            if !has_repeat_vec(line) {
                continue;
            }
            // An explicit allow within the three preceding lines marks
            // a reviewed, justified exception (cold paths, non-word
            // buffers).
            let excused = lines[i.saturating_sub(3)..i]
                .iter()
                .any(|l| l.contains("#[allow(clippy::disallowed_methods)]"));
            assert!(
                excused,
                "{rel}:{}: raw `vec![x; n]` in a hot module — allocate via \
                 ndetect_sim::rows (zeroed_words / zeroed_counts / RowMatrix) \
                 or add a justified #[allow(clippy::disallowed_methods)]:\n  {}",
                i + 1,
                line.trim()
            );
        }
    }
}

#[test]
fn hot_module_list_matches_reality() {
    // Guard the guard: the scanned files must all exist (a rename would
    // otherwise silently drop a module from the scan).
    for rel in HOT_MODULES {
        assert!(
            repo_root().join(rel).is_file(),
            "{rel} vanished — update HOT_MODULES in tests/hot_path_lint.rs"
        );
    }
}
