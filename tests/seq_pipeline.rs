//! Cross-crate integration tests for the sequential pipeline: DFF-aware
//! frontend → two-frame broadside time-frame expansion → transition /
//! stuck-at lowering → the existing worst-case, average-case, and
//! generation engines, all through the umbrella crate exactly as a
//! downstream user would drive them.

use ndetect::analysis::{Procedure1Config, WorstCaseAnalysis};
use ndetect::faults::{FaultUniverse, UniverseOptions};
use ndetect::gen::{generate, GenOptions};
use ndetect::seq::{expand, FaultModel};

/// Every bundled sequential circuit, under both fault models.
fn expanded_cases() -> Vec<(ndetect::netlist::SeqNetlist, FaultModel)> {
    let mut cases = Vec::new();
    for name in ndetect::circuits::seq_suite() {
        let seq = ndetect::circuits::build_seq(name).expect("bundled sequential circuit builds");
        cases.push((seq.clone(), FaultModel::Transition));
        cases.push((seq, FaultModel::StuckAt));
    }
    cases
}

#[test]
fn s27_runs_the_full_analysis_pipeline_under_the_transition_model() {
    let seq = ndetect::circuits::build_seq("s27").expect("s27 builds");
    let expanded = expand(&seq, FaultModel::Transition).expect("expands");
    // Two frames share the primary inputs; frame-1 state bits are free.
    assert_eq!(
        expanded.netlist().num_inputs(),
        seq.num_true_inputs() + seq.num_ffs()
    );
    // Observed: frame-2 primary outputs plus frame-2 flip-flop inputs.
    assert_eq!(
        expanded.netlist().num_outputs(),
        seq.num_true_outputs() + seq.num_ffs()
    );
    // Two transition faults (slow-to-rise, slow-to-fall) per eligible node.
    assert_eq!(expanded.targets().len(), expanded.transition_faults().len());
    assert!(!expanded.targets().is_empty(), "s27 has transition targets");

    let universe = FaultUniverse::build_explicit(
        expanded.netlist(),
        &expanded.explicit_targets(),
        UniverseOptions::default(),
    )
    .expect("fits exhaustive simulation");
    assert_eq!(universe.targets().len(), expanded.targets().len());

    // Worst case: at least one transition fault of s27 is detectable,
    // and nmin witnesses obey the theorem exactly as for stuck-at.
    let wc = WorstCaseAnalysis::compute(&universe);
    let detectable = (0..universe.targets().len())
        .filter(|&i| !universe.target_set(i).is_empty())
        .count();
    assert!(detectable > 0, "s27 transition faults must be detectable");
    for j in 0..wc.len() {
        if let (Some(nmin), Some(w)) = (wc.nmin(j), wc.witness(j)) {
            let t_f = universe.target_set(w);
            let t_g = universe.bridge_set(j);
            let m = t_f.intersection_count(t_g);
            assert!(m > 0, "witness must overlap bridge {j}");
            assert_eq!(t_f.len() - m + 1, nmin as usize, "bridge {j}");
        }
    }

    // Average case (Procedure 1) accepts the explicit universe as-is.
    let tracked: Vec<usize> = (0..universe.bridges().len()).step_by(3).collect();
    if !tracked.is_empty() {
        let config = Procedure1Config {
            nmax: 2,
            num_test_sets: 5,
            ..Default::default()
        };
        let probs =
            ndetect::analysis::estimate_detection_probabilities(&universe, &tracked, &config)
                .expect("procedure 1 runs on an expanded universe");
        assert!(probs.expected_escapes(2) >= 0.0);
    }

    // Generation: compact sets at growing n are monotone in size and
    // stay within the expanded pattern space.
    let space = 1usize << expanded.netlist().num_inputs();
    let mut prev = 0;
    for n in [1u32, 2, 4] {
        let set = generate(
            &universe,
            &GenOptions {
                n,
                compact: true,
                ..Default::default()
            },
        );
        assert!(set.vectors().len() >= prev, "sizes monotone in n");
        assert!(set.vectors().len() <= space);
        prev = set.vectors().len();
    }
}

#[test]
fn expanded_simulation_matches_two_step_flip_flop_semantics() {
    // The defining property of broadside expansion, checked exhaustively
    // on every bundled sequential circuit under both fault models (the
    // transition gadgets must be functionally transparent when their
    // enables are off): simulating the expanded netlist on (pi, state)
    // equals stepping the sequential circuit twice with the same pi.
    for (seq, model) in expanded_cases() {
        let expanded = expand(&seq, model).expect("expands");
        let netlist = expanded.netlist();
        let p = seq.num_true_inputs();
        let s = seq.num_ffs();
        for assignment in 0u32..1 << (p + s) {
            let bits: Vec<bool> = (0..p + s)
                .map(|i| (assignment >> (p + s - 1 - i)) & 1 == 1)
                .collect();
            let (pi, state) = bits.split_at(p);
            let (_, next1) = seq.step(state, pi);
            let (po2, next2) = seq.step(&next1, pi);
            let got = netlist.eval_bool(&bits);
            let want: Vec<bool> = po2.iter().chain(next2.iter()).copied().collect();
            assert_eq!(
                got,
                want,
                "{} [{}] assignment {assignment:0w$b}",
                seq.name(),
                model.label(),
                w = p + s
            );
        }
    }
}

#[test]
fn explicit_universes_are_thread_count_invariant() {
    // The expanded netlist flows through the same fault-parallel build
    // as enumerated universes; explicit target lists must not disturb
    // its thread invariance.
    let seq = ndetect::circuits::build_seq("s27").expect("s27 builds");
    let expanded = expand(&seq, FaultModel::Transition).expect("expands");
    let serial = FaultUniverse::build_explicit(
        expanded.netlist(),
        &expanded.explicit_targets(),
        UniverseOptions::with_threads(1),
    )
    .expect("fits");
    let parallel = FaultUniverse::build_explicit(
        expanded.netlist(),
        &expanded.explicit_targets(),
        UniverseOptions::with_threads(4),
    )
    .expect("fits");
    assert_eq!(serial.targets(), parallel.targets());
    assert_eq!(serial.target_sets(), parallel.target_sets());
    assert_eq!(serial.bridges(), parallel.bridges());
    assert_eq!(serial.bridge_sets(), parallel.bridge_sets());
    let wc1 = WorstCaseAnalysis::compute_with(&serial, 1);
    let wc4 = WorstCaseAnalysis::compute_with(&parallel, 4);
    assert_eq!(wc1.nmin_values(), wc4.nmin_values());
}

#[test]
fn expansion_is_deterministic_across_repeated_runs() {
    // Canonical bytes (the store key input) and target labels must be
    // byte-identical run to run — warm-cache correctness depends on it.
    for (seq, model) in expanded_cases() {
        let a = expand(&seq, model).expect("expands");
        let b = expand(&seq, model).expect("expands");
        assert_eq!(a.canonical(), b.canonical(), "{}", seq.name());
        assert_eq!(a.targets(), b.targets(), "{}", seq.name());
        let labels: Vec<String> = (0..a.targets().len()).map(|i| a.target_label(i)).collect();
        let labels_b: Vec<String> = (0..b.targets().len()).map(|i| b.target_label(i)).collect();
        assert_eq!(labels, labels_b, "{}", seq.name());
    }
}
