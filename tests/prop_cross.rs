//! Cross-crate property tests on randomly generated circuits: the
//! oracles here are slow scalar computations, the subjects are the
//! production bit-parallel/cone-optimized paths.

use ndetect::analysis::WorstCaseAnalysis;
use ndetect::faults::{FaultUniverse, UniverseOptions};
use ndetect::sim::{GoodValues, PatternSpace};
use ndetect_testutil::arb_netlist;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bit-parallel good simulation equals the scalar oracle on every
    /// node and vector.
    #[test]
    fn good_values_match_scalar_oracle(netlist in arb_netlist(6)) {
        let space = PatternSpace::new(netlist.num_inputs()).expect("small");
        let good = GoodValues::compute(&netlist, &space);
        for v in 0..space.num_patterns() {
            let oracle = netlist.eval_bool_all(&space.vector_bits(v));
            for id in netlist.node_ids() {
                prop_assert_eq!(
                    good.node_value(&space, id, v),
                    oracle[id.index()],
                    "node {} vector {}", netlist.node_name(id), v
                );
            }
        }
    }

    /// Structurally equivalent (collapsed-together) faults always have
    /// identical detection sets.
    #[test]
    fn collapsing_is_sound(netlist in arb_netlist(6)) {
        let universe = FaultUniverse::build_with(
            &netlist,
            UniverseOptions { collapse_targets: true, include_bridges: false, ..UniverseOptions::default() },
        ).expect("small");
        let sim = universe.simulator();
        for class in universe.collapsed().classes() {
            let reference = sim.detection_set_stuck(&netlist, class[0]);
            for &f in &class[1..] {
                let set = sim.detection_set_stuck(&netlist, f);
                prop_assert_eq!(
                    reference.to_vec(),
                    set.to_vec(),
                    "class {:?}",
                    class
                );
            }
        }
    }

    /// Enlarging the target set (collapsing off) never increases any
    /// nmin value: more constraints can only force detection earlier.
    #[test]
    fn nmin_is_monotone_in_target_population(netlist in arb_netlist(5)) {
        let collapsed = FaultUniverse::build(&netlist).expect("small");
        let full = FaultUniverse::build_with(
            &netlist,
            UniverseOptions { collapse_targets: false, include_bridges: true, ..UniverseOptions::default() },
        ).expect("small");
        let wc_c = WorstCaseAnalysis::compute(&collapsed);
        let wc_f = WorstCaseAnalysis::compute(&full);
        for j in 0..collapsed.bridges().len() {
            match (wc_c.nmin(j), wc_f.nmin(j)) {
                (Some(c), Some(f)) => prop_assert!(f <= c, "bridge {}: {} > {}", j, f, c),
                (Some(_), None) => prop_assert!(false, "bound lost with more targets"),
                _ => {}
            }
        }
    }

    /// Detection sets of bridging faults only contain vectors where the
    /// activation condition holds in the fault-free circuit.
    #[test]
    fn bridge_detection_implies_activation(netlist in arb_netlist(6)) {
        let universe = FaultUniverse::build(&netlist).expect("small");
        let space = universe.space();
        for (j, fault) in universe.bridges().iter().enumerate() {
            let victim = netlist.lines().line(fault.victim).driver();
            let aggressor = netlist.lines().line(fault.aggressor).driver();
            for v in universe.bridge_set(j).iter() {
                let values = netlist.eval_bool_all(&space.vector_bits(v));
                prop_assert_eq!(values[victim.index()], fault.victim_value);
                prop_assert_eq!(values[aggressor.index()], fault.aggressor_value);
            }
        }
    }

    /// `.bench` writing then parsing yields a behaviourally identical
    /// netlist.
    #[test]
    fn bench_round_trip_preserves_behaviour(netlist in arb_netlist(6)) {
        let text = ndetect::netlist::bench_format::write(&netlist);
        let back = ndetect::netlist::bench_format::parse(netlist.name(), &text)
            .expect("own output parses");
        let space = PatternSpace::new(netlist.num_inputs()).expect("small");
        for v in 0..space.num_patterns() {
            let bits = space.vector_bits(v);
            prop_assert_eq!(netlist.eval_bool(&bits), back.eval_bool(&bits));
        }
    }
}
