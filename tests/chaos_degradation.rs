//! End-to-end degraded-but-correct equivalence: with every store-write
//! failpoint armed `always`, the full analysis pipeline — worst-case,
//! generation, Procedure 1 — must produce byte-identical results to an
//! unfailed run. The cache is an accelerator, never a correctness
//! dependency, so losing the write plane can only cost speed.
//!
//! Failpoints are process-global; this file is its own test binary and
//! serializes its tests on one lock.

use ndetect::analysis::WorstCaseAnalysis;
use ndetect::circuits::figure1;
use ndetect::faults::{FaultUniverse, UniverseOptions};
use ndetect::gen::{generate_stored, GenOptions};
use ndetect::store::Store;
use std::path::PathBuf;
use std::sync::Mutex;

/// Every failpoint on the store's write plane.
const ALL_WRITES_FAIL: &str = "store.save.create=always:return-err;\
                               store.save.write=always:torn-write;\
                               store.save.rename=always:return-err;\
                               store.counters.flush=always:return-err";

struct ChaosGuard(#[allow(dead_code)] std::sync::MutexGuard<'static, ()>);

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        ndetect::chaos::disarm_all();
    }
}

fn armed(config: &str) -> ChaosGuard {
    static LOCK: Mutex<()> = Mutex::new(());
    let guard = LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    ndetect::chaos::disarm_all();
    ndetect::chaos::apply_config(config).expect("valid failpoint config");
    ChaosGuard(guard)
}

fn temp_store(tag: &str) -> (Store, PathBuf) {
    let dir = std::env::temp_dir().join(format!("ndetect-e2e-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    (Store::open(&dir).unwrap(), dir)
}

#[test]
fn a_dead_write_plane_changes_no_analysis_result() {
    // Unfailed reference run, fully through the store.
    let circuit = figure1::netlist();
    let options = UniverseOptions::default();
    let gen_options = GenOptions {
        n: 3,
        compact: true,
        ..GenOptions::default()
    };
    let (clean_store, clean_dir) = temp_store("clean");
    let clean_universe =
        FaultUniverse::build_stored(&circuit, options, Some(&clean_store)).unwrap();
    let clean_wc = WorstCaseAnalysis::compute_stored(&clean_universe, 0, Some(&clean_store));
    let clean_set = generate_stored(&clean_universe, &gen_options, Some(&clean_store));
    assert_eq!(clean_store.session_write_errors(), 0);

    // Same pipeline with the entire write plane failing.
    let _chaos = armed(ALL_WRITES_FAIL);
    let (store, dir) = temp_store("degraded");
    let universe = FaultUniverse::build_stored(&circuit, options, Some(&store)).unwrap();
    let wc = WorstCaseAnalysis::compute_stored(&universe, 0, Some(&store));
    let set = generate_stored(&universe, &gen_options, Some(&store));

    // Identical results, down to the rendered test-set bytes.
    assert_eq!(clean_wc.nmin_values(), wc.nmin_values());
    for n in [1, 2, 3, 4, 10] {
        assert_eq!(clean_wc.coverage_percent(n), wc.coverage_percent(n));
    }
    assert_eq!(clean_set.to_string(), set.to_string());

    // The failures were absorbed and counted, nothing torn published.
    assert!(store.session_write_errors() > 0);
    let verify = store.verify().unwrap();
    assert!(verify.corrupt.is_empty(), "{:?}", verify.corrupt);
    assert_eq!(verify.valid, 0, "no publish can survive a dead write plane");
    let repair = store.repair().unwrap();
    assert!(repair.quarantined.is_empty(), "{:?}", repair.quarantined);

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&clean_dir);
}

#[test]
fn a_degraded_run_warms_up_once_the_plane_heals() {
    // Cold run under failing writes caches nothing...
    let circuit = figure1::netlist();
    let options = UniverseOptions::default();
    let (store, dir) = temp_store("heal");
    {
        let _chaos = armed(ALL_WRITES_FAIL);
        let universe = FaultUniverse::build_stored(&circuit, options, Some(&store)).unwrap();
        let _ = WorstCaseAnalysis::compute_stored(&universe, 0, Some(&store));
        assert!(store.session_write_errors() > 0);
    }
    // ...so the next (healthy) run rebuilds and publishes, and the one
    // after that is fully warm.
    let universe = FaultUniverse::build_stored(&circuit, options, Some(&store)).unwrap();
    let healthy_wc = WorstCaseAnalysis::compute_stored(&universe, 0, Some(&store));
    let hits_before = store.session_hits();
    let warm_universe = FaultUniverse::build_stored(&circuit, options, Some(&store)).unwrap();
    let warm_wc = WorstCaseAnalysis::compute_stored(&warm_universe, 0, Some(&store));
    assert_eq!(store.session_hits(), hits_before + 2);
    assert_eq!(healthy_wc.nmin_values(), warm_wc.nmin_values());
    let _ = std::fs::remove_dir_all(&dir);
}
