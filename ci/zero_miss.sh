#!/usr/bin/env bash
# Shared helpers for the CI cold/warm cache assertions. Source this
# after building the release CLI:
#
#   source ci/zero_miss.sh
#   CACHE="$(mktemp -d)"
#   ...cold run...
#   COLD="$(cache_stat misses "$CACHE")"
#   ...warm run...
#   assert_zero_miss "$CACHE" "$COLD" 2
#
# The warm run of a fully cached workload must add zero store misses
# (i.e. perform zero expensive rebuilds) and must have loaded at least
# the expected number of artifacts back from disk.

# Path to the release `ndet` binary (override with NDET=...).
NDET="${NDET:-./target/release/ndet}"

# cache_stat <key> <cache-dir>: one numeric field from `ndet cache
# stats` (entries, bytes, hits, misses, writes, shards...).
cache_stat() {
  "$NDET" cache stats --cache-dir "$2" | awk -v k="$1" '$1 == k":" {print $2}'
}

# assert_zero_miss <cache-dir> <cold-misses> [min-hits]: the warm pass
# added no misses, served at least min-hits (default 1) loads from
# disk, and the store verifies clean.
assert_zero_miss() {
  local cache="$1" cold="$2" min_hits="${3:-1}" warm hits
  warm="$(cache_stat misses "$cache")"
  hits="$(cache_stat hits "$cache")"
  if [ "$cold" != "$warm" ]; then
    echo "zero-miss violated: cold=$cold misses, warm=$warm" >&2
    return 1
  fi
  if [ "$hits" -lt "$min_hits" ]; then
    echo "warm pass served only $hits hits (expected >= $min_hits)" >&2
    return 1
  fi
  "$NDET" cache verify --cache-dir "$cache"
}
