//! Umbrella crate for the `ndetect` workspace — a from-scratch Rust
//! reproduction of Pomeranz & Reddy, *Worst-Case and Average-Case Analysis
//! of n-Detection Test Sets* (DATE 2005).
//!
//! This crate re-exports every sub-crate under a stable set of module
//! names so a downstream user only needs a single dependency:
//!
//! | module | contents |
//! |--------|----------|
//! | [`netlist`] | gate-level circuits, `.bench` I/O, structural analysis |
//! | [`sim`] | bit-parallel two-valued and three-valued simulation |
//! | [`faults`] | stuck-at + four-way bridging fault models, fault simulation |
//! | [`seq`] | sequential circuits: FF-boundary extraction, two-frame time-frame expansion, transition faults |
//! | [`fsm`] | KISS2 parsing, state encoding, two-level synthesis |
//! | [`circuits`] | the paper's Figure-1 example and the benchmark suite |
//! | [`analysis`] | worst-case `nmin` and average-case (Procedure 1) analyses |
//! | [`gen`] | greedy set-cover n-detection test-set generation + compaction |
//! | [`store`] | content-addressed on-disk artifact cache (universes, nmin vectors, generated sets) |
//! | [`serve`] | persistent analysis service: TCP line protocol, hot LRU, single-flight dedup |
//! | [`chaos`] | deterministic fault-injection failpoints (`NDETECT_FAILPOINTS`) |
//!
//! # Quickstart
//!
//! Compute the minimum `n` guaranteeing detection of the paper's example
//! bridging fault `g0 = (9,0,10,1)`:
//!
//! ```
//! use ndetect::circuits::figure1;
//! use ndetect::analysis::WorstCaseAnalysis;
//! use ndetect::faults::FaultUniverse;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = figure1::netlist();
//! let universe = FaultUniverse::build(&circuit)?;
//! let wc = WorstCaseAnalysis::compute(&universe);
//! let g0 = figure1::paper_bridge_index(&universe, "9", false, "10", true).unwrap();
//! assert_eq!(wc.nmin(g0), Some(3));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use ndetect_chaos as chaos;
pub use ndetect_circuits as circuits;
pub use ndetect_core as analysis;
pub use ndetect_faults as faults;
pub use ndetect_fsm as fsm;
pub use ndetect_gen as gen;
pub use ndetect_netlist as netlist;
pub use ndetect_seq as seq;
pub use ndetect_serve as serve;
pub use ndetect_sim as sim;
pub use ndetect_store as store;
