//! Offline stand-in for the subset of the `criterion` API this
//! workspace uses: `Criterion`, `benchmark_group`/`bench_function`,
//! `Bencher::{iter, iter_batched}`, `BatchSize`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal implementation as a path dependency. It is a
//! real (if crude) harness: each benchmark is warmed up once, timed for
//! `sample_size` iterations, and the mean wall-clock time per iteration
//! is printed. `cargo bench -- --test` (or `--quick`) runs every
//! benchmark exactly once as a smoke test, mirroring upstream
//! criterion's `--test` flag. There are no statistics, plots, or saved
//! baselines.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost; all variants behave the
/// same in this stand-in (one setup per measured iteration).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Times a single benchmark routine.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` for the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// The benchmark manager handed to `criterion_group!` targets.
pub struct Criterion {
    sample_size: u64,
    filter: Option<String>,
    /// Smoke mode (`cargo bench -- --test`, as in upstream criterion):
    /// run every benchmark exactly once, without warm-up, to prove it
    /// executes — timings are reported but meaningless.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            filter: None,
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Sets the number of measured iterations per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Accepted for API compatibility; this stand-in has no separate
    /// warm-up phase length.
    #[must_use]
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility; measurement length is governed
    /// by `sample_size` alone.
    #[must_use]
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Reads a benchmark-name substring filter from the command line
    /// (any first argument not starting with `-`, as passed by
    /// `cargo bench -- <filter>`), plus the `--test`/`--quick` smoke
    /// flags that run every benchmark exactly once.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        self.filter = args.iter().find(|a| !a.starts_with('-')).cloned();
        self.test_mode = args.iter().any(|a| a == "--test" || a == "--quick");
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<R>(&mut self, id: impl Into<String>, routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id, routine);
        self
    }

    fn run<R: FnMut(&mut Bencher)>(&mut self, id: &str, routine: R) {
        self.run_with(id, routine, self.sample_size);
    }

    fn run_with<R: FnMut(&mut Bencher)>(&mut self, id: &str, mut routine: R, sample_size: u64) {
        if let Some(f) = &self.filter {
            if !id.contains(f.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        if self.test_mode {
            // Smoke mode: one iteration, no warm-up — proves the
            // benchmark runs without paying for a measurement.
            routine(&mut bencher);
            println!("{id:<50} smoke: ran 1 iteration");
            return;
        }
        // One untimed warm-up pass, then the measured pass.
        routine(&mut bencher);
        bencher.iterations = sample_size;
        routine(&mut bencher);
        let per_iter = bencher.elapsed.as_secs_f64() / bencher.iterations as f64;
        println!("{id:<50} time: {:>12.3} µs/iter", per_iter * 1e6);
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    /// Group-scoped override; as in upstream criterion it does not
    /// outlive the group.
    sample_size: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1) as u64);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<R>(&mut self, id: impl Into<String>, routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_with(&full, routine, sample_size);
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, with or without an explicit
/// configuration expression.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        /// Benchmark-group entry point generated by `criterion_group!`.
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the `main` function running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
