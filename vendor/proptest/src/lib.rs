//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses: the `proptest!` macro, `prop_assert*` macros, `Strategy` with
//! `prop_map`, `any`, integer-range and tuple strategies, and the
//! `prop::collection::{vec, btree_set}` / `prop::bool::ANY` generators.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal implementation as a path dependency. Each test
//! runs a fixed number of randomly generated cases (default 64,
//! override with `PROPTEST_CASES`); input generation is deterministic
//! per test name and case index, so failures reproduce. Unlike real
//! proptest there is **no shrinking** — a failure reports the case seed
//! instead of a minimal input.

#![forbid(unsafe_code)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// The RNG handed to strategies during generation.
pub type TestRng = StdRng;

/// A failed test-case assertion; produced by the `prop_assert*` macros.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Per-`proptest!`-block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for an unconstrained `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_strategy_for_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_int_ranges!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_for_tuples {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuples! {
    (S0 0)
    (S0 0, S1 1)
    (S0 0, S1 1, S2 2)
    (S0 0, S1 1, S2 2, S3 3)
    (S0 0, S1 1, S2 2, S3 3, S4 4)
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5)
}

/// A size specification for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..=self.hi_inclusive)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

pub mod collection {
    //! Collection strategies: `vec` and `btree_set`.

    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a target size drawn from
    /// `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates ordered sets of values from `element`. As in upstream
    /// proptest, the realized set may be smaller than the drawn target
    /// when the element strategy cannot produce enough distinct values.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 10 + 20 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::{Strategy, TestRng};

    /// The strategy type of [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct AnyBool;

    /// Uniform `true`/`false`.
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            use rand::RngCore;
            rng.next_u64() & 1 == 1
        }
    }
}

/// Drives one `proptest!`-generated test: runs `config.cases` cases
/// (env `PROPTEST_CASES` overrides), each with a deterministic RNG
/// derived from the test name and case index, and panics with the seed
/// on the first failing case.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut test: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(config.cases);
    // FNV-1a over the test name decorrelates streams across tests.
    let mut base = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        base ^= u64::from(byte);
        base = base.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for case in 0..cases {
        let seed = base.wrapping_add(u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut rng = TestRng::seed_from_u64(seed);
        if let Err(e) = test(&mut rng) {
            panic!("proptest `{name}` failed at case {case} (rng seed {seed:#x}):\n{e}");
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };

    pub mod prop {
        //! Namespaced access to strategy modules (`prop::collection`,
        //! `prop::bool`).

        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies. Supports an optional leading
/// `#![proptest_config(expr)]` attribute.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_proptest(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                let __result: ::core::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                __result
            });
        }
    )*};
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// the process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`\n {}",
                stringify!($left),
                stringify!($right),
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: `{:?}`",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: `{:?}`\n {}",
                stringify!($left),
                stringify!($right),
                __l,
                format!($($fmt)+)
            )));
        }
    }};
}
