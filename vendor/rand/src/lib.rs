//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! extension methods `gen_range`/`gen_bool`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal implementation as a path dependency. The
//! generator is xoshiro256++ seeded through SplitMix64 — statistically
//! solid for test-input generation and Monte-Carlo sampling, but *not*
//! stream-compatible with upstream `StdRng` (ChaCha12) and not
//! cryptographically secure. Code in this workspace must only rely on
//! determinism for a fixed seed, never on specific output values.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit value (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of
    /// `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension methods available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        // 53 uniform mantissa bits, exactly like upstream's f64 sampling.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A range that can produce a single uniform sample.
pub trait SampleRange<T> {
    /// Draws one value from `rng`, uniform over the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + mul_shift(rng.next_u64(), span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + mul_shift(rng.next_u64(), span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (i64::from(self.end).wrapping_sub(i64::from(self.start))) as u64;
                i64::from(self.start).wrapping_add(mul_shift(rng.next_u64(), span) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (i64::from(hi).wrapping_sub(i64::from(lo))) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                i64::from(lo).wrapping_add(mul_shift(rng.next_u64(), span + 1) as i64) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64);

/// Lemire-style scaled sample of `[0, span)` without modulo bias spikes.
fn mul_shift(word: u64, span: u64) -> u64 {
    ((u128::from(word) * u128::from(span)) >> 64) as u64
}

pub mod rngs {
    //! Named generator types (only `StdRng` is provided).

    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors for seeding from a single word.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(2usize..=3);
            assert!((2..=3).contains(&w));
        }
    }

    #[test]
    fn all_inclusive_values_reachable() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..=3)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "hits = {hits}");
    }
}
